package storage

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func pagePattern(size int, fill byte) []byte {
	return bytes.Repeat([]byte{fill}, size)
}

func TestPageStorePublishAndIsolation(t *testing.T) {
	ps, err := NewPageStore(256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPageStore(16); err == nil {
		t.Fatal("tiny page size accepted")
	}

	// Version 1: two pages.
	ov := ps.Begin()
	p1, p2 := ov.Allocate(), ov.Allocate()
	if p1 != 1 || p2 != 2 {
		t.Fatalf("allocated ids %d,%d", p1, p2)
	}
	if err := ov.WritePage(p1, pagePattern(256, 0xA1)); err != nil {
		t.Fatal(err)
	}
	if err := ov.WritePage(p2, pagePattern(256, 0xA2)); err != nil {
		t.Fatal(err)
	}
	s1 := ov.Publish("v1")
	if s1.Version() != 1 || s1.NumPages() != 3 || s1.Meta() != "v1" {
		t.Fatalf("published snapshot: v=%d pages=%d meta=%v", s1.Version(), s1.NumPages(), s1.Meta())
	}

	// A reader pins v1, then v2 overwrites page 1 underneath it.
	reader := ps.Acquire()
	defer reader.Release()
	ov = ps.Begin()
	if err := ov.WritePage(1, pagePattern(256, 0xB1)); err != nil {
		t.Fatal(err)
	}
	p3 := ov.Allocate()
	ov.Publish("v2")

	got, err := reader.View(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pagePattern(256, 0xA1)) {
		t.Fatal("pinned snapshot saw a later version's write")
	}
	cur := ps.Acquire()
	defer cur.Release()
	if cur.Version() != 2 {
		t.Fatalf("current version %d, want 2", cur.Version())
	}
	got, err = cur.View(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pagePattern(256, 0xB1)) {
		t.Fatal("current snapshot missing the v2 write")
	}
	// Unwritten allocated pages read as zeroes; shared pages alias.
	if z, err := cur.View(p3); err != nil || !bytes.Equal(z, make([]byte, 256)) {
		t.Fatalf("allocated-but-unwritten page: %v", err)
	}
	a, _ := reader.View(2)
	b, _ := cur.View(2)
	if &a[0] != &b[0] {
		t.Fatal("unchanged page not shared between versions")
	}
	if _, err := cur.View(99); err == nil {
		t.Fatal("out-of-range view accepted")
	}
}

func TestOverlayValidation(t *testing.T) {
	ps, err := NewPageStore(256)
	if err != nil {
		t.Fatal(err)
	}
	ov := ps.Begin()
	if err := ov.WritePage(0, pagePattern(256, 1)); err == nil {
		t.Fatal("write to page 0 accepted")
	}
	if err := ov.WritePage(5, pagePattern(256, 1)); err == nil {
		t.Fatal("write past the page space accepted")
	}
	id := ov.Allocate()
	if err := ov.WritePage(id, []byte("short")); err == nil {
		t.Fatal("short write accepted")
	}
	if err := ov.WritePage(id, pagePattern(256, 7)); err != nil {
		t.Fatal(err)
	}
	// Read-through: staged write wins, base pages visible, fresh pages zero.
	if b, err := ov.View(id); err != nil || b[0] != 7 {
		t.Fatalf("overlay read-through of staged write: %v", err)
	}
	id2 := ov.Allocate()
	if b, err := ov.View(id2); err != nil || b[0] != 0 {
		t.Fatalf("overlay read-through of fresh page: %v", err)
	}
	ov.Abort()
	if err := ov.WritePage(id, pagePattern(256, 7)); err == nil {
		t.Fatal("write after abort accepted")
	}
	// Abort must have dropped the overlay's base pin.
	if s := ps.Acquire(); s.Version() != 0 {
		t.Fatalf("version %d after aborted overlay", s.Version())
	} else {
		s.Release()
	}
}

// TestSnapshotBufferRecycling checks the refcounted release path: once the
// last pin on a superseded snapshot drops, the buffers it no longer shares
// with its successor return to the store's pool and satisfy later writes
// without fresh allocation.
func TestSnapshotBufferRecycling(t *testing.T) {
	ps, err := NewPageStore(256)
	if err != nil {
		t.Fatal(err)
	}
	ov := ps.Begin()
	id := ov.Allocate()
	if err := ov.WritePage(id, pagePattern(256, 1)); err != nil {
		t.Fatal(err)
	}
	ov.Publish(nil)

	old := ps.Acquire()
	for v := byte(2); v <= 4; v++ {
		ov = ps.Begin()
		if err := ov.WritePage(id, pagePattern(256, v)); err != nil {
			t.Fatal(err)
		}
		ov.Publish(nil)
	}
	// v1..v3's buffers for the page are all superseded, but v1 is still
	// pinned, so nothing may be recycled yet.
	if _, recycled := ps.Stats(); recycled != 0 {
		t.Fatalf("recycled %d buffers while a pin was held", recycled)
	}
	if b, err := old.View(id); err != nil || b[0] != 1 {
		t.Fatalf("pinned snapshot corrupted: %v", err)
	}
	old.Release()
	allocBefore, recycled := ps.Stats()
	if recycled != 3 {
		t.Fatalf("recycled %d buffers after release, want 3 (v1..v3's private pages)", recycled)
	}
	// The next writes reuse those buffers instead of allocating.
	ov = ps.Begin()
	if err := ov.WritePage(id, pagePattern(256, 9)); err != nil {
		t.Fatal(err)
	}
	ov.Publish(nil)
	allocAfter, _ := ps.Stats()
	if allocAfter != allocBefore {
		t.Fatalf("allocation count grew %d -> %d despite free buffers", allocBefore, allocAfter)
	}
}

// TestPageStoreConcurrentReadersAndPublisher races lock-free readers
// against a publisher; run under -race it proves snapshot isolation:
// every reader observes a page set from exactly one version.
func TestPageStoreConcurrentReadersAndPublisher(t *testing.T) {
	ps, err := NewPageStore(256)
	if err != nil {
		t.Fatal(err)
	}
	const numPages = 8
	ov := ps.Begin()
	for i := 0; i < numPages; i++ {
		id := ov.Allocate()
		if err := ov.WritePage(id, pagePattern(256, 0)); err != nil {
			t.Fatal(err)
		}
	}
	ov.Publish(uint64(0))

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				s := ps.Acquire()
				want := s.Meta().(uint64)
				for id := PageID(1); id <= numPages; id++ {
					buf, err := s.View(id)
					if err != nil {
						t.Error(err)
						break
					}
					if uint64(buf[0]) != want%256 || !bytes.Equal(buf, pagePattern(256, buf[0])) {
						t.Errorf("torn read: version %d page %d starts with %d", want, id, buf[0])
						break
					}
				}
				s.Release()
			}
		}()
	}
	for v := uint64(1); v <= 200; v++ {
		ov := ps.Begin()
		for id := PageID(1); id <= numPages; id++ {
			if err := ov.WritePage(id, pagePattern(256, byte(v%256))); err != nil {
				t.Fatal(err)
			}
		}
		ov.Publish(v)
	}
	close(done)
	wg.Wait()
}

// TestHeapReaderOverSnapshot moves a heap file into a snapshot and reads
// it back through the immutable view, overflow chains included.
func TestHeapReaderOverSnapshot(t *testing.T) {
	mem, err := NewMemPager(256)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := NewBufferPool(mem, 64)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHeapFile(bp)
	if err != nil {
		t.Fatal(err)
	}
	small := []byte("inline record")
	large := bytes.Repeat([]byte{0xCD}, 700) // spills into overflow pages
	ridS, err := h.Insert(small)
	if err != nil {
		t.Fatal(err)
	}
	ridL, err := h.Insert(large)
	if err != nil {
		t.Fatal(err)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}

	ps, err := NewPageStore(256)
	if err != nil {
		t.Fatal(err)
	}
	ov := ps.Begin()
	buf := make([]byte, 256)
	for i := 1; i < mem.NumPages(); i++ {
		id := ov.Allocate()
		if err := mem.ReadPage(PageID(i), buf); err != nil {
			t.Fatal(err)
		}
		if err := ov.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	snap := ov.Publish(nil)
	defer snap.Release()
	hr := NewHeapReader(snap, h.Pages())
	if got, err := hr.Get(ridS); err != nil || !bytes.Equal(got, small) {
		t.Fatalf("inline record through snapshot: %q, %v", got, err)
	}
	if got, err := hr.Get(ridL); err != nil || !bytes.Equal(got, large) {
		t.Fatalf("overflow record through snapshot: %d bytes, %v", len(got), err)
	}
	n := 0
	if err := hr.Scan(func(RecordID, []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("scan found %d records, want 2", n)
	}
}

// TestDiskPagerReopenAcrossSessions covers the durability path end to
// end: several "refresh versions" of pages and metadata written through a
// buffer pool, the file closed and reopened (twice), and the page space
// extended in a later session — pages and meta must survive each cycle.
func TestDiskPagerReopenAcrossSessions(t *testing.T) {
	path := t.TempDir() + "/versions.db"
	d, err := CreateDiskPager(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := NewBufferPool(d, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Three versions: each dirties both pages through the pool and stamps
	// the version in the metadata, as a delta-refresh cycle would.
	var ids []PageID
	for i := 0; i < 2; i++ {
		f, err := bp.NewPage(PageHeap)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, f.ID())
		bp.Unpin(f, true)
	}
	for v := 1; v <= 3; v++ {
		for i, id := range ids {
			f, err := bp.Fetch(id)
			if err != nil {
				t.Fatal(err)
			}
			copy(f.Page().Bytes()[1:], bytes.Repeat([]byte{byte(16*v + i)}, 64))
			bp.Unpin(f, true)
		}
		if err := d.SetMeta([]byte(fmt.Sprintf("version-%d", v))); err != nil {
			t.Fatal(err)
		}
		if err := bp.FlushAll(); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Allocate(); err == nil {
		t.Fatal("allocate on closed disk pager succeeded")
	}

	// Session 2: everything from the last flushed version is visible.
	re, err := OpenDiskPager(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.PageSize() != 512 || re.NumPages() != 3 {
		t.Fatalf("reopened: pageSize=%d numPages=%d", re.PageSize(), re.NumPages())
	}
	meta, err := re.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if string(meta) != "version-3" {
		t.Fatalf("meta after reopen: %q, want version-3", meta)
	}
	buf := make([]byte, 512)
	for i, id := range ids {
		if err := re.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		if want := byte(16*3 + i); buf[1] != want || buf[64] != want {
			t.Fatalf("page %d content after reopen: %x, want %x", id, buf[1], want)
		}
	}
	// Extend the page space in this session; meta must survive Allocate's
	// header rewrite.
	extra, err := re.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := re.WritePage(extra, bytes.Repeat([]byte{0xEE}, 512)); err != nil {
		t.Fatal(err)
	}
	if err := re.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	// Session 3: growth and the original versions both persisted.
	re2, err := OpenDiskPager(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if re2.NumPages() != 4 {
		t.Fatalf("numPages after growth: %d, want 4", re2.NumPages())
	}
	meta, err = re2.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if string(meta) != "version-3" {
		t.Fatalf("meta after second reopen: %q", meta)
	}
	if err := re2.ReadPage(extra, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xEE || buf[511] != 0xEE {
		t.Fatal("page written post-reopen lost")
	}
	if err := re2.ReadPage(ids[0], buf); err != nil {
		t.Fatal(err)
	}
	if buf[1] != byte(16*3) {
		t.Fatal("original page lost after growth session")
	}
}
