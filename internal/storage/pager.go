package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// Pager is the raw page I/O interface shared by the disk and memory
// backends. Page 0 is a metadata page managed via Meta/SetMeta; user pages
// are allocated from 1 upward.
type Pager interface {
	// PageSize returns the fixed page size in bytes.
	PageSize() int
	// NumPages returns the number of allocated pages, including page 0.
	NumPages() int
	// Allocate reserves a fresh zeroed page and returns its id.
	Allocate() (PageID, error)
	// ReadPage fills buf (of PageSize bytes) with the page's content.
	ReadPage(id PageID, buf []byte) error
	// WritePage persists buf (of PageSize bytes) as the page's content.
	WritePage(id PageID, buf []byte) error
	// Meta returns the user metadata blob stored in page 0.
	Meta() ([]byte, error)
	// SetMeta stores a user metadata blob in page 0. It must fit in
	// PageSize minus a small header.
	SetMeta(meta []byte) error
	// Sync flushes to stable storage (no-op for the memory pager).
	Sync() error
	// Close releases resources. The pager is unusable afterwards.
	Close() error
}

// metaHeaderSize is the page-0 layout: magic (4) | pageSize (4) |
// numPages (4) | metaLen (4).
const metaHeaderSize = 16

const pagerMagic = 0x56425452 // "VBTR"

// errClosed is returned by operations on a closed pager.
var errClosed = errors.New("storage: pager closed")

// MemPager is an in-memory Pager, used by tests and benchmarks that do not
// need persistence.
type MemPager struct {
	mu       sync.RWMutex
	pageSize int
	pages    [][]byte
	meta     []byte
	closed   bool
}

// NewMemPager creates an in-memory pager with the given page size.
func NewMemPager(pageSize int) (*MemPager, error) {
	if pageSize < MinPageSize {
		return nil, fmt.Errorf("storage: page size %d below minimum %d", pageSize, MinPageSize)
	}
	return &MemPager{
		pageSize: pageSize,
		pages:    [][]byte{make([]byte, pageSize)}, // page 0
	}, nil
}

// PageSize implements Pager.
func (m *MemPager) PageSize() int { return m.pageSize }

// NumPages implements Pager.
func (m *MemPager) NumPages() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.pages)
}

// Allocate implements Pager.
func (m *MemPager) Allocate() (PageID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, errClosed
	}
	m.pages = append(m.pages, make([]byte, m.pageSize))
	return PageID(len(m.pages) - 1), nil
}

// ReadPage implements Pager.
func (m *MemPager) ReadPage(id PageID, buf []byte) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return errClosed
	}
	if int(id) >= len(m.pages) {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	if len(buf) != m.pageSize {
		return fmt.Errorf("storage: read buffer %d bytes, want %d", len(buf), m.pageSize)
	}
	copy(buf, m.pages[id])
	return nil
}

// WritePage implements Pager.
func (m *MemPager) WritePage(id PageID, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errClosed
	}
	if int(id) >= len(m.pages) {
		return fmt.Errorf("storage: write of unallocated page %d", id)
	}
	if len(buf) != m.pageSize {
		return fmt.Errorf("storage: write buffer %d bytes, want %d", len(buf), m.pageSize)
	}
	copy(m.pages[id], buf)
	return nil
}

// Meta implements Pager.
func (m *MemPager) Meta() ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return nil, errClosed
	}
	out := make([]byte, len(m.meta))
	copy(out, m.meta)
	return out, nil
}

// SetMeta implements Pager.
func (m *MemPager) SetMeta(meta []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errClosed
	}
	if len(meta) > m.pageSize-metaHeaderSize {
		return fmt.Errorf("storage: metadata %d bytes exceeds page capacity", len(meta))
	}
	m.meta = append([]byte(nil), meta...)
	return nil
}

// Sync implements Pager.
func (m *MemPager) Sync() error { return nil }

// Close implements Pager.
func (m *MemPager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.pages = nil
	return nil
}

// DiskPager is a file-backed Pager. The file begins with page 0 carrying
// the pager header and user metadata.
type DiskPager struct {
	mu       sync.Mutex
	f        *os.File
	pageSize int
	numPages int
	closed   bool
}

// CreateDiskPager creates (truncating) a page file at path.
func CreateDiskPager(path string, pageSize int) (*DiskPager, error) {
	if pageSize < MinPageSize {
		return nil, fmt.Errorf("storage: page size %d below minimum %d", pageSize, MinPageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: creating page file: %w", err)
	}
	d := &DiskPager{f: f, pageSize: pageSize, numPages: 1}
	if err := d.writeHeader(nil); err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

// OpenDiskPager opens an existing page file.
func OpenDiskPager(path string) (*DiskPager, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("storage: opening page file: %w", err)
	}
	var hdr [metaHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: reading page file header: %w", err)
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != pagerMagic {
		f.Close()
		return nil, errors.New("storage: not a page file (bad magic)")
	}
	ps := int(binary.BigEndian.Uint32(hdr[4:8]))
	np := int(binary.BigEndian.Uint32(hdr[8:12]))
	if ps < MinPageSize || np < 1 {
		f.Close()
		return nil, errors.New("storage: corrupt page file header")
	}
	return &DiskPager{f: f, pageSize: ps, numPages: np}, nil
}

func (d *DiskPager) writeHeader(meta []byte) error {
	buf := make([]byte, d.pageSize)
	binary.BigEndian.PutUint32(buf[0:4], pagerMagic)
	binary.BigEndian.PutUint32(buf[4:8], uint32(d.pageSize))
	binary.BigEndian.PutUint32(buf[8:12], uint32(d.numPages))
	binary.BigEndian.PutUint32(buf[12:16], uint32(len(meta)))
	copy(buf[metaHeaderSize:], meta)
	if _, err := d.f.WriteAt(buf, 0); err != nil {
		return fmt.Errorf("storage: writing page file header: %w", err)
	}
	return nil
}

func (d *DiskPager) readMetaLocked() ([]byte, error) {
	buf := make([]byte, d.pageSize)
	if _, err := d.f.ReadAt(buf, 0); err != nil && err != io.EOF {
		return nil, fmt.Errorf("storage: reading metadata page: %w", err)
	}
	n := int(binary.BigEndian.Uint32(buf[12:16]))
	if n < 0 || n > d.pageSize-metaHeaderSize {
		return nil, errors.New("storage: corrupt metadata length")
	}
	out := make([]byte, n)
	copy(out, buf[metaHeaderSize:metaHeaderSize+n])
	return out, nil
}

// PageSize implements Pager.
func (d *DiskPager) PageSize() int { return d.pageSize }

// NumPages implements Pager.
func (d *DiskPager) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.numPages
}

// Allocate implements Pager.
func (d *DiskPager) Allocate() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, errClosed
	}
	id := PageID(d.numPages)
	zero := make([]byte, d.pageSize)
	if _, err := d.f.WriteAt(zero, int64(id)*int64(d.pageSize)); err != nil {
		return 0, fmt.Errorf("storage: extending page file: %w", err)
	}
	d.numPages++
	meta, err := d.readMetaLocked()
	if err != nil {
		return 0, err
	}
	if err := d.writeHeader(meta); err != nil {
		return 0, err
	}
	return id, nil
}

// ReadPage implements Pager.
func (d *DiskPager) ReadPage(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errClosed
	}
	if int(id) >= d.numPages {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	if len(buf) != d.pageSize {
		return fmt.Errorf("storage: read buffer %d bytes, want %d", len(buf), d.pageSize)
	}
	_, err := d.f.ReadAt(buf, int64(id)*int64(d.pageSize))
	return err
}

// WritePage implements Pager.
func (d *DiskPager) WritePage(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errClosed
	}
	if int(id) >= d.numPages {
		return fmt.Errorf("storage: write of unallocated page %d", id)
	}
	if len(buf) != d.pageSize {
		return fmt.Errorf("storage: write buffer %d bytes, want %d", len(buf), d.pageSize)
	}
	_, err := d.f.WriteAt(buf, int64(id)*int64(d.pageSize))
	return err
}

// Meta implements Pager.
func (d *DiskPager) Meta() ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, errClosed
	}
	return d.readMetaLocked()
}

// SetMeta implements Pager.
func (d *DiskPager) SetMeta(meta []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errClosed
	}
	if len(meta) > d.pageSize-metaHeaderSize {
		return fmt.Errorf("storage: metadata %d bytes exceeds page capacity", len(meta))
	}
	return d.writeHeader(meta)
}

// Sync implements Pager.
func (d *DiskPager) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errClosed
	}
	return d.f.Sync()
}

// Close implements Pager.
func (d *DiskPager) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	return d.f.Close()
}
