package storage

import "os"

// osWriteFile is indirected for test use without importing os in the main
// test file's namespace twice.
func osWriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
