package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// RecordID locates a tuple in a heap file: page and slot.
type RecordID struct {
	Page PageID
	Slot uint16
}

// IsValid reports whether the RecordID refers to a real page.
func (r RecordID) IsValid() bool { return r.Page != InvalidPageID }

// Encode appends the 6-byte wire form.
func (r RecordID) Encode(dst []byte) []byte {
	var b [6]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(r.Page))
	binary.BigEndian.PutUint16(b[4:6], r.Slot)
	return append(dst, b[:]...)
}

// DecodeRecordID parses a 6-byte RecordID.
func DecodeRecordID(data []byte) (RecordID, error) {
	if len(data) < 6 {
		return RecordID{}, errors.New("storage: truncated record id")
	}
	return RecordID{
		Page: PageID(binary.BigEndian.Uint32(data[0:4])),
		Slot: binary.BigEndian.Uint16(data[4:6]),
	}, nil
}

func (r RecordID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }

// HeapFile stores variable-length records in slotted pages linked by
// allocation order. It tracks the last page with free space for appends;
// records never move once inserted, so RecordIDs are stable.
//
// Records larger than a page spill into chained overflow pages: the slot
// cell holds a one-byte tag, and oversized records store a descriptor
// (total length + first overflow page) whose payload is reassembled on
// Get. Overflow pages are dedicated to a single record.
type HeapFile struct {
	bp      *BufferPool
	pages   []PageID // slotted heap pages, in allocation order
	current PageID   // page currently receiving inserts
}

// Record cell layout: tag(1) | payload. Inline records carry the payload
// directly; overflow records carry totalLen(4) | firstOverflowPage(4).
const (
	recInline   = 0x00
	recOverflow = 0x01
)

// Overflow page layout: type(1) | next(4) | chunkLen(2) | chunk.
const overflowHeader = 1 + 4 + 2

// NewHeapFile creates an empty heap over the buffer pool.
func NewHeapFile(bp *BufferPool) (*HeapFile, error) {
	f, err := bp.NewPage(PageHeap)
	if err != nil {
		return nil, err
	}
	id := f.ID()
	bp.Unpin(f, true)
	return &HeapFile{bp: bp, pages: []PageID{id}, current: id}, nil
}

// OpenHeapFile reattaches to heap pages recorded elsewhere (e.g. in pager
// metadata).
func OpenHeapFile(bp *BufferPool, pages []PageID) (*HeapFile, error) {
	if len(pages) == 0 {
		return nil, errors.New("storage: heap requires at least one page")
	}
	cp := append([]PageID(nil), pages...)
	return &HeapFile{bp: bp, pages: cp, current: cp[len(cp)-1]}, nil
}

// Pages returns the heap's page ids in allocation order.
func (h *HeapFile) Pages() []PageID { return append([]PageID(nil), h.pages...) }

// Insert stores a record and returns its id.
func (h *HeapFile) Insert(rec []byte) (RecordID, error) {
	inlineMax := h.bp.PageSize() - pageHeaderSize - slotSize - 1
	var cell []byte
	if len(rec) <= inlineMax {
		cell = make([]byte, 1+len(rec))
		cell[0] = recInline
		copy(cell[1:], rec)
	} else {
		first, err := h.writeOverflow(rec)
		if err != nil {
			return RecordID{}, err
		}
		cell = make([]byte, 1+4+4)
		cell[0] = recOverflow
		binary.BigEndian.PutUint32(cell[1:5], uint32(len(rec)))
		binary.BigEndian.PutUint32(cell[5:9], uint32(first))
	}
	return h.insertCell(cell)
}

// writeOverflow spills rec into a chain of overflow pages and returns the
// first page id.
func (h *HeapFile) writeOverflow(rec []byte) (PageID, error) {
	chunkMax := h.bp.PageSize() - overflowHeader
	var first, prev PageID
	var prevFrame *Frame
	for off := 0; off < len(rec); off += chunkMax {
		end := off + chunkMax
		if end > len(rec) {
			end = len(rec)
		}
		f, err := h.bp.NewPage(PageHeap)
		if err != nil {
			if prevFrame != nil {
				h.bp.Unpin(prevFrame, true)
			}
			return 0, err
		}
		buf := f.Page().Bytes()
		buf[0] = byte(PageHeap)
		binary.BigEndian.PutUint32(buf[1:5], 0) // next, patched below
		binary.BigEndian.PutUint16(buf[5:7], uint16(end-off))
		copy(buf[overflowHeader:], rec[off:end])
		if prevFrame != nil {
			binary.BigEndian.PutUint32(prevFrame.Page().Bytes()[1:5], uint32(f.ID()))
			h.bp.Unpin(prevFrame, true)
		} else {
			first = f.ID()
		}
		prev = f.ID()
		prevFrame = f
	}
	_ = prev
	if prevFrame != nil {
		h.bp.Unpin(prevFrame, true)
	}
	return first, nil
}

// insertCell places a prepared cell into the current (or a fresh) page.
func (h *HeapFile) insertCell(cell []byte) (RecordID, error) {
	f, err := h.bp.Fetch(h.current)
	if err != nil {
		return RecordID{}, err
	}
	slot, err := f.Page().InsertCell(cell)
	if err == nil {
		rid := RecordID{Page: h.current, Slot: uint16(slot)}
		h.bp.Unpin(f, true)
		return rid, nil
	}
	h.bp.Unpin(f, false)
	if !errors.Is(err, ErrPageFull) {
		return RecordID{}, err
	}
	nf, err := h.bp.NewPage(PageHeap)
	if err != nil {
		return RecordID{}, err
	}
	h.current = nf.ID()
	h.pages = append(h.pages, nf.ID())
	slot, err = nf.Page().InsertCell(cell)
	if err != nil {
		h.bp.Unpin(nf, false)
		return RecordID{}, err
	}
	rid := RecordID{Page: h.current, Slot: uint16(slot)}
	h.bp.Unpin(nf, true)
	return rid, nil
}

// Get returns a copy of the record at rid, reassembling overflow chains.
func (h *HeapFile) Get(rid RecordID) ([]byte, error) {
	return heapGet(h.bp, rid)
}

// Delete tombstones the record at rid.
func (h *HeapFile) Delete(rid RecordID) error {
	f, err := h.bp.Fetch(rid.Page)
	if err != nil {
		return err
	}
	defer h.bp.Unpin(f, true)
	return f.Page().DeleteCell(int(rid.Slot))
}

// Scan calls fn for every live record in heap order. fn's record slice is
// only valid during the call. Scanning stops early if fn returns false.
func (h *HeapFile) Scan(fn func(rid RecordID, rec []byte) bool) error {
	return heapScan(h.bp, h.pages, fn)
}

// Count returns the number of live records (a full scan).
func (h *HeapFile) Count() (int, error) {
	n := 0
	err := h.Scan(func(RecordID, []byte) bool { n++; return true })
	return n, err
}

// HeapReader reads a heap file's records through any PageReader — in
// particular an immutable Snapshot, which is how the lock-free query path
// loads tuples while refreshes publish successor versions alongside.
type HeapReader struct {
	pr    PageReader
	pages []PageID
}

// NewHeapReader wraps a page view and the heap's page list (as recorded
// in replica metadata).
func NewHeapReader(pr PageReader, pages []PageID) *HeapReader {
	return &HeapReader{pr: pr, pages: pages}
}

// Get returns a copy of the record at rid, reassembling overflow chains.
func (h *HeapReader) Get(rid RecordID) ([]byte, error) {
	return heapGet(h.pr, rid)
}

// Scan calls fn for every live record in heap order, as HeapFile.Scan.
func (h *HeapReader) Scan(fn func(rid RecordID, rec []byte) bool) error {
	return heapScan(h.pr, h.pages, fn)
}

// heapGet reads one record through a page view.
func heapGet(pr PageReader, rid RecordID) ([]byte, error) {
	buf, err := pr.View(rid.Page)
	if err != nil {
		return nil, err
	}
	cell, err := AsPage(buf).Cell(int(rid.Slot))
	if err != nil {
		return nil, err
	}
	return resolveCell(pr, cell)
}

// heapScan walks the heap pages through a page view.
func heapScan(pr PageReader, pages []PageID, fn func(rid RecordID, rec []byte) bool) error {
	for _, pid := range pages {
		buf, err := pr.View(pid)
		if err != nil {
			return err
		}
		p := AsPage(buf)
		n := p.NumSlots()
		for i := 0; i < n; i++ {
			if p.IsDeleted(i) {
				continue
			}
			cell, err := p.Cell(i)
			if err != nil {
				return err
			}
			rec, err := resolveCell(pr, cell)
			if err != nil {
				return err
			}
			if !fn(RecordID{Page: pid, Slot: uint16(i)}, rec) {
				return nil
			}
		}
	}
	return nil
}

// resolveCell decodes a record cell, following overflow chains.
func resolveCell(pr PageReader, cell []byte) ([]byte, error) {
	if len(cell) < 1 {
		return nil, errors.New("storage: empty record cell")
	}
	switch cell[0] {
	case recInline:
		out := make([]byte, len(cell)-1)
		copy(out, cell[1:])
		return out, nil
	case recOverflow:
		if len(cell) != 1+4+4 {
			return nil, errors.New("storage: malformed overflow descriptor")
		}
		total := int(binary.BigEndian.Uint32(cell[1:5]))
		next := PageID(binary.BigEndian.Uint32(cell[5:9]))
		out := make([]byte, 0, total)
		for next != InvalidPageID {
			buf, err := pr.View(next)
			if err != nil {
				return nil, err
			}
			n := int(binary.BigEndian.Uint16(buf[5:7]))
			if overflowHeader+n > len(buf) {
				return nil, errors.New("storage: corrupt overflow chunk")
			}
			out = append(out, buf[overflowHeader:overflowHeader+n]...)
			next = PageID(binary.BigEndian.Uint32(buf[1:5]))
			if len(out) > total {
				return nil, errors.New("storage: overflow chain longer than declared")
			}
		}
		if len(out) != total {
			return nil, fmt.Errorf("storage: overflow chain yields %d bytes, want %d", len(out), total)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("storage: unknown record tag %d", cell[0])
	}
}
