// Package storage provides the on-disk substrate of the reproduction:
// fixed-size slotted pages, disk- and memory-backed pagers, an LRU buffer
// pool, and heap files for tuple storage. The VB-tree and the baseline
// B+-tree both live on these pages, so the fan-out and height measurements
// of Figures 8–9 come from real page layouts (4 KB nodes, Table 1).
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// DefaultPageSize is the block/node size from Table 1 of the paper (4 KB).
const DefaultPageSize = 4096

// MinPageSize bounds how small a page may be and still hold the slotted
// header plus one useful cell.
const MinPageSize = 128

// PageID identifies a page within a pager. Page 0 is reserved for pager
// metadata; user pages start at 1.
type PageID uint32

// InvalidPageID is the zero PageID; it never refers to a user page.
const InvalidPageID PageID = 0

// PageType tags what a page stores.
type PageType uint8

const (
	PageFree PageType = iota
	PageHeap
	PageBTreeLeaf
	PageBTreeInternal
	PageVBLeaf
	PageVBInternal
	PageMeta
)

// Slotted-page layout:
//
//	offset 0: type (1) | flags (1) | nslots (2) | freeStart (2) | freeEnd (2)
//	offset 8: slot directory, 4 bytes per slot: cellOffset (2) | cellLen (2)
//	...free space...
//	cells, growing down from the end of the page
//
// A deleted slot keeps its directory entry with cellOffset == tombstone.
const (
	pageHeaderSize = 8
	slotSize       = 4
	tombstone      = 0xFFFF
)

// Page is a slotted page over a fixed-size byte buffer. The buffer is owned
// by the buffer pool frame; Page is a transient, cheap view.
type Page struct {
	buf []byte
}

// AsPage wraps a raw buffer as a Page without initialization.
func AsPage(buf []byte) Page { return Page{buf: buf} }

// InitPage formats buf as an empty slotted page of the given type.
func InitPage(buf []byte, t PageType) Page {
	for i := range buf {
		buf[i] = 0
	}
	p := Page{buf: buf}
	p.buf[0] = byte(t)
	p.setNumSlots(0)
	p.setFreeStart(pageHeaderSize)
	p.setFreeEnd(uint16(len(buf)))
	return p
}

// Type returns the page type tag.
func (p Page) Type() PageType { return PageType(p.buf[0]) }

// SetType updates the page type tag.
func (p Page) SetType(t PageType) { p.buf[0] = byte(t) }

// Size returns the page size in bytes.
func (p Page) Size() int { return len(p.buf) }

// Bytes exposes the raw buffer (for pager I/O).
func (p Page) Bytes() []byte { return p.buf }

func (p Page) numSlots() int         { return int(binary.BigEndian.Uint16(p.buf[2:4])) }
func (p Page) setNumSlots(n int)     { binary.BigEndian.PutUint16(p.buf[2:4], uint16(n)) }
func (p Page) freeStart() uint16     { return binary.BigEndian.Uint16(p.buf[4:6]) }
func (p Page) setFreeStart(v uint16) { binary.BigEndian.PutUint16(p.buf[4:6], v) }
func (p Page) freeEnd() uint16       { return binary.BigEndian.Uint16(p.buf[6:8]) }
func (p Page) setFreeEnd(v uint16)   { binary.BigEndian.PutUint16(p.buf[6:8], v) }

// NumSlots returns the slot-directory length, including tombstoned slots.
func (p Page) NumSlots() int { return p.numSlots() }

// FreeSpace returns the bytes available for one new cell plus its slot.
func (p Page) FreeSpace() int {
	free := int(p.freeEnd()) - int(p.freeStart())
	free -= slotSize // a new cell needs a directory entry too
	if free < 0 {
		return 0
	}
	return free
}

func (p Page) slotAt(i int) (off, ln uint16) {
	base := pageHeaderSize + i*slotSize
	return binary.BigEndian.Uint16(p.buf[base : base+2]),
		binary.BigEndian.Uint16(p.buf[base+2 : base+4])
}

func (p Page) setSlotAt(i int, off, ln uint16) {
	base := pageHeaderSize + i*slotSize
	binary.BigEndian.PutUint16(p.buf[base:base+2], off)
	binary.BigEndian.PutUint16(p.buf[base+2:base+4], ln)
}

// ErrPageFull is returned when a cell cannot fit in the page's free space.
var ErrPageFull = errors.New("storage: page full")

// InsertCell appends a cell and returns its slot index.
func (p Page) InsertCell(cell []byte) (int, error) {
	if len(cell) > int(p.freeEnd()) { // cheap sanity before FreeSpace math
		return 0, ErrPageFull
	}
	if len(cell) > p.FreeSpace() {
		return 0, ErrPageFull
	}
	slot := p.numSlots()
	newEnd := p.freeEnd() - uint16(len(cell))
	copy(p.buf[newEnd:], cell)
	p.setFreeEnd(newEnd)
	p.setSlotAt(slot, newEnd, uint16(len(cell)))
	p.setNumSlots(slot + 1)
	p.setFreeStart(p.freeStart() + slotSize)
	return slot, nil
}

// Cell returns the cell at slot i, or an error if i is out of range or
// tombstoned. The returned slice aliases the page buffer.
func (p Page) Cell(i int) ([]byte, error) {
	if i < 0 || i >= p.numSlots() {
		return nil, fmt.Errorf("storage: slot %d out of range [0,%d)", i, p.numSlots())
	}
	off, ln := p.slotAt(i)
	if off == tombstone {
		return nil, fmt.Errorf("storage: slot %d is deleted", i)
	}
	if int(off)+int(ln) > len(p.buf) {
		return nil, fmt.Errorf("storage: slot %d cell out of bounds", i)
	}
	return p.buf[off : int(off)+int(ln)], nil
}

// DeleteCell tombstones slot i. The space is reclaimed by Compact.
func (p Page) DeleteCell(i int) error {
	if i < 0 || i >= p.numSlots() {
		return fmt.Errorf("storage: slot %d out of range [0,%d)", i, p.numSlots())
	}
	off, _ := p.slotAt(i)
	if off == tombstone {
		return fmt.Errorf("storage: slot %d already deleted", i)
	}
	p.setSlotAt(i, tombstone, 0)
	return nil
}

// IsDeleted reports whether slot i is tombstoned.
func (p Page) IsDeleted(i int) bool {
	if i < 0 || i >= p.numSlots() {
		return true
	}
	off, _ := p.slotAt(i)
	return off == tombstone
}

// Compact rewrites live cells to eliminate dead space, preserving slot
// indices (so RecordIDs stay valid).
func (p Page) Compact() {
	n := p.numSlots()
	type live struct {
		slot int
		data []byte
	}
	cells := make([]live, 0, n)
	for i := 0; i < n; i++ {
		off, ln := p.slotAt(i)
		if off == tombstone {
			continue
		}
		d := make([]byte, ln)
		copy(d, p.buf[off:int(off)+int(ln)])
		cells = append(cells, live{i, d})
	}
	end := uint16(len(p.buf))
	for _, c := range cells {
		end -= uint16(len(c.data))
		copy(p.buf[end:], c.data)
		p.setSlotAt(c.slot, end, uint16(len(c.data)))
	}
	p.setFreeEnd(end)
}

// LiveCells returns the number of non-tombstoned slots.
func (p Page) LiveCells() int {
	n := 0
	for i := 0; i < p.numSlots(); i++ {
		if !p.IsDeleted(i) {
			n++
		}
	}
	return n
}
