package storage

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// DefaultPoolFrames is the default buffer-pool capacity.
const DefaultPoolFrames = 1024

// Frame is a pinned page in the buffer pool. Callers must Unpin exactly
// once per Fetch/NewPage; writers mark the frame dirty via
// Unpin(…, true) or MarkDirty.
type Frame struct {
	id    PageID
	buf   []byte
	pins  int
	dirty bool
	elem  *list.Element // position in LRU list when unpinned
}

// ID returns the page id of the framed page.
func (f *Frame) ID() PageID { return f.id }

// Page returns a slotted-page view over the frame's buffer.
func (f *Frame) Page() Page { return AsPage(f.buf) }

// BufferPool caches pages over a Pager with LRU replacement of unpinned
// frames. It is safe for concurrent use; page-content synchronization is
// the caller's concern (the lock manager handles logical locking).
type BufferPool struct {
	mu     sync.Mutex
	pager  Pager
	cap    int
	frames map[PageID]*Frame
	lru    *list.List // of PageID; front = most recently unpinned

	// journal, when non-nil, records every page id dirtied through the
	// pool since the last DrainJournal — the page-level changelog the
	// central server turns into delta updates for edge replicas.
	journal map[PageID]struct{}

	// stats
	hits, misses, evictions uint64
}

// NewBufferPool wraps pager with an LRU cache of at most frames pages.
func NewBufferPool(pager Pager, frames int) (*BufferPool, error) {
	if frames < 1 {
		return nil, fmt.Errorf("storage: buffer pool needs at least 1 frame, got %d", frames)
	}
	return &BufferPool{
		pager:  pager,
		cap:    frames,
		frames: make(map[PageID]*Frame, frames),
		lru:    list.New(),
	}, nil
}

// Pager returns the underlying pager.
func (bp *BufferPool) Pager() Pager { return bp.pager }

// PageSize returns the page size of the underlying pager.
func (bp *BufferPool) PageSize() int { return bp.pager.PageSize() }

// ErrPoolExhausted is returned when every frame is pinned and a new page is
// requested.
var ErrPoolExhausted = errors.New("storage: all buffer pool frames pinned")

// View implements PageReader over the live pool: it faults the page in
// and returns its frame buffer without copying. Frame buffers are never
// reused after eviction (eviction writes back and drops the frame), so
// the slice stays valid; callers must provide their own synchronization
// against writers mutating the page, exactly as with Fetch.
func (bp *BufferPool) View(id PageID) ([]byte, error) {
	f, err := bp.Fetch(id)
	if err != nil {
		return nil, err
	}
	bp.Unpin(f, false)
	return f.buf, nil
}

// Fetch pins the page with the given id, reading it from the pager on miss.
func (bp *BufferPool) Fetch(id PageID) (*Frame, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[id]; ok {
		bp.hits++
		if f.pins == 0 && f.elem != nil {
			bp.lru.Remove(f.elem)
			f.elem = nil
		}
		f.pins++
		return f, nil
	}
	bp.misses++
	f, err := bp.allocFrameLocked(id)
	if err != nil {
		return nil, err
	}
	if err := bp.pager.ReadPage(id, f.buf); err != nil {
		delete(bp.frames, id)
		return nil, err
	}
	return f, nil
}

// NewPage allocates a fresh page in the pager, pins it, and formats it with
// the given type.
func (bp *BufferPool) NewPage(t PageType) (*Frame, error) {
	id, err := bp.pager.Allocate()
	if err != nil {
		return nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, err := bp.allocFrameLocked(id)
	if err != nil {
		return nil, err
	}
	InitPage(f.buf, t)
	f.dirty = true
	bp.recordLocked(id)
	return f, nil
}

// EnableJournal starts recording dirtied page ids. Pages dirtied before
// the call are not recorded.
func (bp *BufferPool) EnableJournal() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if bp.journal == nil {
		bp.journal = make(map[PageID]struct{})
	}
}

// DrainJournal returns the page ids dirtied since the previous drain, in
// ascending order, and resets the journal. It returns nil when the
// journal is disabled or empty.
func (bp *BufferPool) DrainJournal() []PageID {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if len(bp.journal) == 0 {
		return nil
	}
	out := make([]PageID, 0, len(bp.journal))
	for id := range bp.journal {
		out = append(out, id)
	}
	bp.journal = make(map[PageID]struct{})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (bp *BufferPool) recordLocked(id PageID) {
	if bp.journal != nil {
		bp.journal[id] = struct{}{}
	}
}

// allocFrameLocked finds or evicts a frame for id and pins it once.
func (bp *BufferPool) allocFrameLocked(id PageID) (*Frame, error) {
	if len(bp.frames) >= bp.cap {
		if err := bp.evictLocked(); err != nil {
			return nil, err
		}
	}
	f := &Frame{id: id, buf: make([]byte, bp.pager.PageSize()), pins: 1}
	bp.frames[id] = f
	return f, nil
}

// evictLocked writes back and drops the least recently used unpinned frame.
func (bp *BufferPool) evictLocked() error {
	elem := bp.lru.Back()
	if elem == nil {
		return ErrPoolExhausted
	}
	id := elem.Value.(PageID)
	f := bp.frames[id]
	if f.dirty {
		if err := bp.pager.WritePage(id, f.buf); err != nil {
			return fmt.Errorf("storage: evicting page %d: %w", id, err)
		}
	}
	bp.lru.Remove(elem)
	delete(bp.frames, id)
	bp.evictions++
	return nil
}

// Unpin releases one pin; dirty marks the frame as modified.
func (bp *BufferPool) Unpin(f *Frame, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if dirty {
		f.dirty = true
		bp.recordLocked(f.id)
	}
	if f.pins <= 0 {
		panic(fmt.Sprintf("storage: unpin of unpinned page %d", f.id))
	}
	f.pins--
	if f.pins == 0 {
		f.elem = bp.lru.PushFront(f.id)
	}
}

// MarkDirty flags a pinned frame as modified.
func (bp *BufferPool) MarkDirty(f *Frame) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f.dirty = true
	bp.recordLocked(f.id)
}

// FlushAll writes every dirty frame back to the pager and syncs it.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	for id, f := range bp.frames {
		if f.dirty {
			if err := bp.pager.WritePage(id, f.buf); err != nil {
				bp.mu.Unlock()
				return fmt.Errorf("storage: flushing page %d: %w", id, err)
			}
			f.dirty = false
		}
	}
	bp.mu.Unlock()
	return bp.pager.Sync()
}

// Stats reports hit/miss/eviction counters.
func (bp *BufferPool) Stats() (hits, misses, evictions uint64) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.hits, bp.misses, bp.evictions
}
