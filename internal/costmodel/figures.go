package costmodel

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Figure is one reproduced plot: an x-axis and one or more named series.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
}

// Series is one curve of a figure.
type Series struct {
	Name string
	Y    []float64
}

// Render writes the figure as an aligned text table.
func (f Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	widths := make([]int, len(header))
	rows := make([][]string, len(f.X))
	for i := range f.X {
		row := []string{trimFloat(f.X[i])}
		for _, s := range f.Series {
			row = append(row, trimFloat(s.Y[i]))
		}
		rows[i] = row
	}
	for c, h := range header {
		widths[c] = len(h)
		for _, row := range rows {
			if len(row[c]) > widths[c] {
				widths[c] = len(row[c])
			}
		}
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for c, cell := range cells {
			parts[c] = fmt.Sprintf("%*s", widths[c], cell)
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	writeRow(header)
	for _, row := range rows {
		writeRow(row)
	}
	if f.YLabel != "" {
		fmt.Fprintf(w, "(y: %s)\n", f.YLabel)
	}
	fmt.Fprintln(w)
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}

// keySizeSweep is the x-axis of Figures 8–9: log2|K| from 0 to 8.
func keySizeSweep() []int {
	out := make([]int, 9)
	for i := range out {
		out[i] = 1 << i
	}
	return out
}

// Fig8FanOut reproduces Figure 8: index fan-out versus key length for the
// B-tree and the VB-tree.
func Fig8FanOut(base Params) Figure {
	keys := keySizeSweep()
	f := Figure{
		ID:     "F8",
		Title:  "Index Tree Fan-Out versus Key Length",
		XLabel: "log2|K|",
		YLabel: "fan-out",
		Series: []Series{{Name: "B-tree"}, {Name: "VB-tree"}},
	}
	for i, k := range keys {
		p := base
		p.K = k
		f.X = append(f.X, float64(i))
		f.Series[0].Y = append(f.Series[0].Y, float64(p.BTreeFanOut()))
		f.Series[1].Y = append(f.Series[1].Y, float64(p.VBTreeFanOut()))
	}
	return f
}

// Fig9Height reproduces Figure 9: index tree height versus key length.
func Fig9Height(base Params) Figure {
	keys := keySizeSweep()
	f := Figure{
		ID:     "F9",
		Title:  "Index Tree Height versus Key Length",
		XLabel: "log2|K|",
		YLabel: "height (levels)",
		Series: []Series{{Name: "B-tree"}, {Name: "VB-tree"}},
	}
	for i, k := range keys {
		p := base
		p.K = k
		f.X = append(f.X, float64(i))
		f.Series[0].Y = append(f.Series[0].Y, float64(p.BTreeHeight()))
		f.Series[1].Y = append(f.Series[1].Y, float64(p.VBTreeHeight()))
	}
	return f
}

// selectivitySweep is the x-axis of Figures 10 and 12.
func selectivitySweep() []float64 {
	out := []float64{1}
	for s := 10.0; s <= 100; s += 10 {
		out = append(out, s)
	}
	return out
}

// Fig10Communication reproduces Figure 10(a)–(c): communication cost
// versus selectivity for Q_C ∈ {2, 5, 8}.
func Fig10Communication(base Params, qc int) Figure {
	p := base
	p.QC = qc
	f := Figure{
		ID:     fmt.Sprintf("F10(Qc=%d)", qc),
		Title:  fmt.Sprintf("Query Communication Cost, Qc = %d", qc),
		XLabel: "selectivity%",
		YLabel: "bytes",
		Series: []Series{{Name: "Naive"}, {Name: "VB-tree"}},
	}
	for _, sel := range selectivitySweep() {
		qr := p.QRForSelectivity(sel)
		f.X = append(f.X, sel)
		f.Series[0].Y = append(f.Series[0].Y, float64(p.CommNaive(qr)))
		f.Series[1].Y = append(f.Series[1].Y, float64(p.CommVB(qr)))
	}
	return f
}

// Fig11AttrFactor reproduces Figure 11: communication cost versus
// attribute size |A| = |D| · 2^f for f = 0..6, at 20% and 80% selectivity.
func Fig11AttrFactor(base Params) Figure {
	f := Figure{
		ID:     "F11",
		Title:  "Communication Cost versus Attribute Size (|A| = |D|·2^f)",
		XLabel: "attrFactor",
		YLabel: "bytes",
		Series: []Series{
			{Name: "Naive(20%)"}, {Name: "Naive(80%)"},
			{Name: "VB-tree(20%)"}, {Name: "VB-tree(80%)"},
		},
	}
	for fac := 0; fac <= 6; fac++ {
		p := base
		p.AttrSize = p.D * (1 << fac)
		f.X = append(f.X, float64(fac))
		for si, sel := range []float64{20, 80} {
			qr := p.QRForSelectivity(sel)
			f.Series[si].Y = append(f.Series[si].Y, float64(p.CommNaive(qr)))
			f.Series[2+si].Y = append(f.Series[2+si].Y, float64(p.CommVB(qr)))
		}
	}
	return f
}

// Fig12Computation reproduces Figure 12(a)–(c): client computation cost in
// units of Cost_h versus selectivity, for X ∈ {5, 10, 100}.
func Fig12Computation(base Params, x float64) Figure {
	p := base
	p.X = x
	f := Figure{
		ID:     fmt.Sprintf("F12(X=%g)", x),
		Title:  fmt.Sprintf("Query Computation Cost, X = %g", x),
		XLabel: "selectivity%",
		YLabel: "Cost_h units",
		Series: []Series{{Name: "Naive"}, {Name: "VB-tree"}},
	}
	for _, sel := range selectivitySweep() {
		qr := p.QRForSelectivity(sel)
		f.X = append(f.X, sel)
		f.Series[0].Y = append(f.Series[0].Y, p.CompNaive(qr))
		f.Series[1].Y = append(f.Series[1].Y, p.CompVB(qr))
	}
	return f
}

// Fig13aCostK reproduces Figure 13(a): computation cost versus
// Cost_k/Cost_h ∈ [0, 3] at X = 10.
func Fig13aCostK(base Params) Figure {
	p := base
	p.X = 10
	f := Figure{
		ID:     "F13a",
		Title:  "Computation Cost versus Cost_k/Cost_h (X = 10)",
		XLabel: "Cost_k/Cost_h",
		YLabel: "Cost_h units",
		Series: []Series{
			{Name: "Naive(20%)"}, {Name: "Naive(80%)"},
			{Name: "VB-tree(20%)"}, {Name: "VB-tree(80%)"},
		},
	}
	for r := 0.0; r <= 3.0001; r += 0.5 {
		q := p
		q.CostK = r * q.CostH
		f.X = append(f.X, r)
		for si, sel := range []float64{20, 80} {
			qr := q.QRForSelectivity(sel)
			f.Series[si].Y = append(f.Series[si].Y, q.CompNaive(qr))
			f.Series[2+si].Y = append(f.Series[2+si].Y, q.CompVB(qr))
		}
	}
	return f
}

// Fig13bQc reproduces Figure 13(b): computation cost versus Q_C = 0..10 at
// X = 10.
func Fig13bQc(base Params) Figure {
	p := base
	p.X = 10
	f := Figure{
		ID:     "F13b",
		Title:  "Computation Cost versus Qc (X = 10)",
		XLabel: "Qc",
		YLabel: "Cost_h units",
		Series: []Series{
			{Name: "Naive(20%)"}, {Name: "Naive(80%)"},
			{Name: "VB-tree(20%)"}, {Name: "VB-tree(80%)"},
		},
	}
	for qc := 0; qc <= p.NC; qc++ {
		q := p
		q.QC = qc
		f.X = append(f.X, float64(qc))
		for si, sel := range []float64{20, 80} {
			qr := q.QRForSelectivity(sel)
			f.Series[si].Y = append(f.Series[si].Y, q.CompNaive(qr))
			f.Series[2+si].Y = append(f.Series[2+si].Y, q.CompVB(qr))
		}
	}
	return f
}

// UpdateInsertCost reproduces the §4.4 insert analysis: cost versus table
// size (the height term grows logarithmically).
func UpdateInsertCost(base Params) Figure {
	f := Figure{
		ID:     "UPD-I",
		Title:  "Insert Cost versus Table Size (formula 11)",
		XLabel: "log10 N_R",
		YLabel: "Cost_h units",
		Series: []Series{{Name: "VB-tree insert"}},
	}
	for e := 3; e <= 8; e++ {
		p := base
		p.NR = int(math.Pow(10, float64(e)))
		f.X = append(f.X, float64(e))
		f.Series[0].Y = append(f.Series[0].Y, p.InsertCost())
	}
	return f
}

// UpdateDeleteCost reproduces the §4.4 delete analysis: cost versus the
// number of deleted tuples (formula 12).
func UpdateDeleteCost(base Params) Figure {
	f := Figure{
		ID:     "UPD-D",
		Title:  "Delete Cost versus Deleted Tuples (formula 12)",
		XLabel: "log10 q_r",
		YLabel: "Cost_h units",
		Series: []Series{{Name: "VB-tree delete"}},
	}
	for e := 0; e <= 6; e++ {
		qr := int(math.Pow(10, float64(e)))
		f.X = append(f.X, float64(e))
		f.Series[0].Y = append(f.Series[0].Y, base.DeleteCost(qr))
	}
	return f
}

// ShardedUpdateCost extends the §4.4 insert analysis (formula 11) to a
// table range-partitioned into n independently-signed VB-tree shards.
// Two effects move the cost:
//
//   - The recombine path shortens: a shard holds N_R/n tuples, so the
//     height term of formula (11) becomes H_VB(N_R/n).
//   - The signature generations — the cost the paper's formula folds
//     into the combine terms but which dominate wall-clock in practice
//     (Cost_s ≈ 10000×Cost_h for signing, per the paper's §2 citation) —
//     stop serializing on one root. For a batch of B inserts spread
//     across the shards, each shard re-signs its B/n dirtied leaves plus
//     its root path once, concurrently with every other shard.
//
// The figure plots, per batch of B inserts versus shard count: the total
// signing work (grows mildly, +n·H_VB(N_R/n) root paths) and the signing
// critical path with ≥n cores (drops roughly as 1/n) — the analytic
// counterpart of BenchmarkShardedIngest. Signing cost is taken as
// 10000·Cost_h per re-signed node, batch size B = 256.
func ShardedUpdateCost(base Params) Figure {
	const (
		batch    = 256
		signCost = 10_000 // Cost_s/Cost_h for signature generation (§2)
	)
	f := Figure{
		ID:     "UPD-S",
		Title:  "Sharded Insert Cost per 256-Batch versus Shard Count (formula 11 extended)",
		XLabel: "shards",
		YLabel: "Cost_h units",
		Series: []Series{
			{Name: "signing work (total)"},
			{Name: "signing critical path (>=n cores)"},
			{Name: "recombine path (formula 11 height term)"},
		},
	}
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		p := base
		p.NR = base.NR / n
		if p.NR < 1 {
			p.NR = 1
		}
		h := float64(p.VBTreeHeight())
		perShard := (float64(batch)/float64(n) + h) * signCost * base.CostH
		total := perShard * float64(n)
		f.X = append(f.X, float64(n))
		f.Series[0].Y = append(f.Series[0].Y, total)
		f.Series[1].Y = append(f.Series[1].Y, perShard)
		f.Series[2].Y = append(f.Series[2].Y, float64(batch)*(float64(base.NC)*(base.CostH+base.CostK)+h*base.CostK))
	}
	return f
}

// AllFigures returns every analytic figure at the given base parameters.
func AllFigures(base Params) []Figure {
	return []Figure{
		Fig8FanOut(base),
		Fig9Height(base),
		Fig10Communication(base, 2),
		Fig10Communication(base, 5),
		Fig10Communication(base, 8),
		Fig11AttrFactor(base),
		Fig12Computation(base, 5),
		Fig12Computation(base, 10),
		Fig12Computation(base, 100),
		Fig13aCostK(base),
		Fig13bQc(base),
		UpdateInsertCost(base),
		UpdateDeleteCost(base),
		ShardedUpdateCost(base),
	}
}

// RenderTable1 prints the parameter defaults (Table 1).
func RenderTable1(w io.Writer, p Params) {
	fmt.Fprintln(w, "== T1: Parameters (Table 1) ==")
	rows := [][2]string{
		{"|D| signed digest length (bytes)", fmt.Sprint(p.D)},
		{"|K| search key length (bytes)", fmt.Sprint(p.K)},
		{"|P| node pointer length (bytes)", fmt.Sprint(p.P)},
		{"|B| block/node size (bytes)", fmt.Sprint(p.B)},
		{"N_R tuples in table", fmt.Sprint(p.NR)},
		{"N_C attributes per tuple", fmt.Sprint(p.NC)},
		{"Q_C attributes in result", fmt.Sprint(p.QC)},
		{"|A| attribute size (bytes)", fmt.Sprint(p.AttrSize)},
		{"Cost_h attribute hash cost", trimFloat(p.CostH)},
		{"Cost_k digest combine cost", trimFloat(p.CostK)},
		{"X = Cost_s/Cost_h ratio", trimFloat(p.X)},
		{"F_B B-tree fan-out (derived)", fmt.Sprint(p.BTreeFanOut())},
		{"F_VB VB-tree fan-out (formula 6)", fmt.Sprint(p.VBTreeFanOut())},
		{"H_VB VB-tree height (formula 7)", fmt.Sprint(p.VBTreeHeight())},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-36s %s\n", r[0], r[1])
	}
	fmt.Fprintln(w)
}
