package costmodel_test

import (
	"context"
	"testing"

	"edgeauth/internal/central"
	"edgeauth/internal/costmodel"
	"edgeauth/internal/sig"
	"edgeauth/internal/workload"
)

// reshardObs is one transition's observed stats deltas.
type reshardObs struct {
	resigns, signs, pages uint64
	tailReplayed          uint64
	buildMs               float64
}

// observedTransitions runs a median split of shard 0 followed by a merge
// of its children on a live central server (ed25519, so SignOps counts
// signatures 1:1) and returns each transition's stats deltas.
func observedTransitions(t *testing.T, rows int) (split, merge reshardObs) {
	t.Helper()
	key, err := sig.Generate(sig.SchemeEd25519, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := central.NewServerWithKey(central.Options{PageSize: 4096, Shards: 2}, key)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	spec := workload.DefaultSpec(rows)
	sch, err := spec.Schema()
	if err != nil {
		t.Fatal(err)
	}
	tuples, err := spec.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddTable(sch, tuples); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	s0 := srv.Stats()
	if _, err := srv.SplitShard(ctx, sch.Table, 0, nil); err != nil {
		t.Fatalf("split: %v", err)
	}
	s1 := srv.Stats()
	if _, err := srv.MergeShards(ctx, sch.Table, 0); err != nil {
		t.Fatalf("merge: %v", err)
	}
	s2 := srv.Stats()
	split = reshardObs{
		resigns:      s1.ReshardResigns - s0.ReshardResigns,
		signs:        s1.SignOps - s0.SignOps,
		pages:        s1.ReshardPagesMoved - s0.ReshardPagesMoved,
		tailReplayed: s1.ReshardTailReplayed - s0.ReshardTailReplayed,
		buildMs:      s1.ReshardBuildMs - s0.ReshardBuildMs,
	}
	merge = reshardObs{
		resigns:      s2.ReshardResigns - s1.ReshardResigns,
		signs:        s2.SignOps - s1.SignOps,
		pages:        s2.ReshardPagesMoved - s1.ReshardPagesMoved,
		tailReplayed: s2.ReshardTailReplayed - s1.ReshardTailReplayed,
		buildMs:      s2.ReshardBuildMs - s1.ReshardBuildMs,
	}
	return split, merge
}

// TestReshardCostTiesToObservedStats pins the split/merge cost formula
// against a live server: signature counts must match exactly (they are
// the minimal-resigning contract), and the modeled page floor must sit
// below the observed page writes by no more than the slotted-page
// overhead factor, scaling linearly with the carved tuple count.
func TestReshardCostTiesToObservedStats(t *testing.T) {
	const rows = 2000 // Default() workload shape: 10 attrs × 20 B on 4 KB pages
	obsSplit, obsMerge := observedTransitions(t, rows)

	p := costmodel.Default()
	p.NR = rows
	// Shard 0 holds rows/2 tuples; the median split carves rows/4 each
	// side, and the merge rebuilds their union.
	ms := p.SplitCost(rows/4, rows/4)
	mm := p.MergeCost(rows/4, rows/4)

	if uint64(ms.RootsResigned) != obsSplit.resigns || uint64(ms.SignOps) != obsSplit.signs {
		t.Errorf("split signatures: model %d roots / %d signs, observed %d / %d",
			ms.RootsResigned, ms.SignOps, obsSplit.resigns, obsSplit.signs)
	}
	if uint64(mm.RootsResigned) != obsMerge.resigns || uint64(mm.SignOps) != obsMerge.signs {
		t.Errorf("merge signatures: model %d roots / %d signs, observed %d / %d",
			mm.RootsResigned, mm.SignOps, obsMerge.resigns, obsMerge.signs)
	}

	checkPages := func(name string, model int, observed uint64) {
		t.Helper()
		if observed < uint64(model) {
			t.Errorf("%s: observed %d pages below the modeled packed floor %d", name, observed, model)
		}
		if observed > uint64(4*model) {
			t.Errorf("%s: observed %d pages more than 4x the modeled floor %d", name, observed, model)
		}
	}
	checkPages("split", ms.PagesMoved, obsSplit.pages)
	checkPages("merge", mm.PagesMoved, obsMerge.pages)

	// Incremental transitions on a quiescent table: the delta tail is
	// empty, so the observed in-lock replay is zero and the modeled
	// barrier collapses to its constant signature term — while the
	// O(shard) build work shows up as unlocked build wall time.
	if obsSplit.tailReplayed != 0 || obsMerge.tailReplayed != 0 {
		t.Errorf("quiescent transitions replayed a tail: split %d, merge %d, want 0/0",
			obsSplit.tailReplayed, obsMerge.tailReplayed)
	}
	if got, want := p.BarrierComp(int(obsSplit.tailReplayed)), p.BarrierComp(0); got != want {
		t.Errorf("observed barrier comp %v, want the constant term %v", got, want)
	}
	if obsSplit.buildMs <= 0 || obsMerge.buildMs <= 0 {
		t.Errorf("transitions recorded no unlocked build time: split %.3fms, merge %.3fms",
			obsSplit.buildMs, obsMerge.buildMs)
	}

	// Linearity: doubling the table doubles the carved tuple count, and
	// observed pages must track the model's ratio.
	obsSplit2, _ := observedTransitions(t, 2*rows)
	ms2 := p.SplitCost(rows/2, rows/2)
	obsRatio := float64(obsSplit2.pages) / float64(obsSplit.pages)
	modelRatio := float64(ms2.PagesMoved) / float64(ms.PagesMoved)
	if r := obsRatio / modelRatio; r < 0.75 || r > 1.25 {
		t.Errorf("page scaling: observed ratio %.2f vs model ratio %.2f (off by %.2fx)",
			obsRatio, modelRatio, r)
	}
}

// TestReshardCostShape pins the formula's intrinsic properties, no
// server involved.
func TestReshardCostShape(t *testing.T) {
	p := costmodel.Default()
	if c := p.SplitCost(0, 0); c.PagesMoved != 0 || c.Comp != 0 {
		t.Errorf("empty split costs %+v, want zero pages and comp", c)
	}
	s := p.SplitCost(500, 500)
	m := p.MergeCost(500, 500)
	if s.RootsResigned != 2 || s.SignOps != 3 || m.RootsResigned != 1 || m.SignOps != 2 {
		t.Errorf("signature constants: split %+v, merge %+v", s, m)
	}
	// A split writes the same tuple bytes as the inverse merge plus one
	// extra store header, so its page count is >= the merge's.
	if s.PagesMoved < m.PagesMoved {
		t.Errorf("split pages %d below merge pages %d for the same tuples", s.PagesMoved, m.PagesMoved)
	}
	// Both components grow with the carved tuple count.
	s2 := p.SplitCost(1000, 1000)
	if s2.PagesMoved <= s.PagesMoved || s2.Comp <= s.Comp {
		t.Errorf("cost did not grow with carved tuples: %+v -> %+v", s, s2)
	}
	// The signature component does NOT grow — that is the whole point of
	// the minimal re-signing design.
	if s2.RootsResigned != s.RootsResigned || s2.SignOps != s.SignOps {
		t.Errorf("signature count grew with shard size: %+v -> %+v", s, s2)
	}
	// The barrier stall model: constant signatures at an empty tail,
	// linear in the tail thereafter, and independent of the shard size —
	// the build term never enters it.
	if got, want := p.BarrierComp(0), 3*p.CostS(); got != want {
		t.Errorf("empty-tail barrier comp %v, want the 3-signature constant %v", got, want)
	}
	b1 := p.BarrierComp(100) - p.BarrierComp(0)
	b2 := p.BarrierComp(200) - p.BarrierComp(0)
	if b1 <= 0 || b2 != 2*b1 {
		t.Errorf("barrier comp not linear in the tail: +100 -> %v, +200 -> %v", b1, b2)
	}
}
