// Package costmodel implements the analytical evaluation of the paper's
// §4: the parameter set of Table 1 and the closed-form cost formulas
// (6)–(12) plus the Naive formulas of the Appendix. Every figure in the
// paper (8–13) is a plot of these formulas; the generators here reproduce
// each curve at the paper's parameter defaults, while the benchmark
// harness compares them against measurements of the real implementation.
//
// Where the published formulas are ambiguous (the PDF's equation
// typesetting is partially garbled), the reconstruction below follows the
// prose: VO digests comprise the top-node digest, at most (F−1) digests in
// each of the top node and the leftmost/rightmost node per subtree level,
// and one digest per filtered attribute; client computation is one hash
// per returned attribute value, one signature recovery per VO digest, and
// one combine per digest folded into the final product.
package costmodel

import (
	"fmt"
	"math"
)

// Params is Table 1 of the paper.
type Params struct {
	// D is the length of a signed digest in bytes (|D|).
	D int
	// K is the search-key length in bytes (|K|).
	K int
	// P is the node-pointer length in bytes (|P|).
	P int
	// B is the block/node size in bytes (|B|).
	B int
	// NR is the number of tuples in the table (N_R).
	NR int
	// NC is the number of attributes per tuple (N_C).
	NC int
	// QC is the number of attributes in the query result (Q_C).
	QC int
	// AttrSize is the size of each attribute value in bytes (|A_i|,
	// uniform; the paper fixes 200-byte tuples with 20-byte attributes).
	AttrSize int
	// CostH is the cost of hashing one attribute (Cost_h), the unit of
	// Figures 12–13.
	CostH float64
	// CostK is the cost of combining two digests (Cost_k).
	CostK float64
	// X is Cost_s / Cost_h, the signature-recovery-to-hash cost ratio
	// (the paper cites ~100 for verification; Figure 12 sweeps 5/10/100).
	X float64
}

// Default returns Table 1's default values.
func Default() Params {
	return Params{
		D:        16,
		K:        16,
		P:        4,
		B:        4096,
		NR:       1_000_000,
		NC:       10,
		QC:       10,
		AttrSize: 20,
		CostH:    1,
		CostK:    1,
		X:        10,
	}
}

// Validate checks for nonsensical parameters.
func (p Params) Validate() error {
	switch {
	case p.D <= 0 || p.K <= 0 || p.P <= 0 || p.B <= 0:
		return fmt.Errorf("costmodel: sizes must be positive: %+v", p)
	case p.NR <= 0 || p.NC <= 0:
		return fmt.Errorf("costmodel: table dimensions must be positive")
	case p.QC < 0 || p.QC > p.NC:
		return fmt.Errorf("costmodel: QC=%d out of [0,%d]", p.QC, p.NC)
	case p.B < p.K+p.P+p.D:
		return fmt.Errorf("costmodel: block size %d too small", p.B)
	}
	return nil
}

// CostS returns the signature-recovery cost Cost_s = X · Cost_h.
func (p Params) CostS() float64 { return p.X * p.CostH }

// TupleSize returns the tuple width N_C · |A|.
func (p Params) TupleSize() int { return p.NC * p.AttrSize }

// BTreeFanOut is the classic B+-tree fan-out for the node size: each child
// beyond the first costs one key and one pointer.
func (p Params) BTreeFanOut() int {
	f := 1 + (p.B-p.P)/(p.K+p.P)
	if f < 2 {
		f = 2
	}
	return f
}

// VBTreeFanOut is formula (6): every child entry additionally carries a
// signed digest of |D| bytes, shrinking the fan-out.
func (p Params) VBTreeFanOut() int {
	f := 1 + (p.B-p.P-p.D)/(p.K+p.P+p.D)
	if f < 2 {
		f = 2
	}
	return f
}

// heightFor returns the height of a fully packed tree with the given
// fan-out over NR entries (formula (7)); leaves count as one level.
func heightFor(fanOut, nr int) int {
	if nr <= 1 {
		return 1
	}
	h := int(math.Ceil(math.Log(float64(nr)) / math.Log(float64(fanOut))))
	if h < 1 {
		h = 1
	}
	return h
}

// BTreeHeight is the height of the plain B+-tree.
func (p Params) BTreeHeight() int { return heightFor(p.BTreeFanOut(), p.NR) }

// VBTreeHeight is formula (7) for the VB-tree.
func (p Params) VBTreeHeight() int { return heightFor(p.VBTreeFanOut(), p.NR) }

// EnvelopeHeight is formula (8): the height of the enveloping subtree of a
// contiguous result of qr tuples in a fully packed VB-tree.
func (p Params) EnvelopeHeight(qr int) int {
	if qr <= 1 {
		return 1
	}
	h := heightFor(p.VBTreeFanOut(), qr)
	max := p.VBTreeHeight()
	if h > max {
		h = max
	}
	return h
}

// DSCount bounds |D_S| for a contiguous result of qr tuples: at most
// (F−1) digests in the top node plus the leftmost and rightmost nodes at
// each level below the top (paper §4.2).
func (p Params) DSCount(qr int) int {
	if qr <= 0 {
		return 0
	}
	qh := p.EnvelopeHeight(qr)
	boundaryNodes := 1 + 2*(qh-1)
	return (p.VBTreeFanOut() - 1) * boundaryNodes
}

// DPCount is |D_P| = Q_R · (N_C − Q_C).
func (p Params) DPCount(qr int) int { return qr * (p.NC - p.QC) }

// ResultBytes is the raw result payload: Q_R returned tuples of Q_C
// attributes each.
func (p Params) ResultBytes(qr int) int { return qr * p.QC * p.AttrSize }

// CommVB is formula (9): result bytes + |D_P| digests + |D_S| digests +
// the top-node digest.
func (p Params) CommVB(qr int) int {
	return p.ResultBytes(qr) + (p.DPCount(qr)+p.DSCount(qr)+1)*p.D
}

// CommNaive is the Appendix communication formula: result bytes + one
// signed tuple digest per result tuple + one signed digest per filtered
// attribute.
func (p Params) CommNaive(qr int) int {
	return p.ResultBytes(qr) + qr*p.D + p.DPCount(qr)*p.D
}

// CompVB is formula (10): hashes for returned attribute values, one
// recovery per VO digest, and one combine per digest folded into the
// product.
func (p Params) CompVB(qr int) float64 {
	hashes := float64(qr*p.QC) * p.CostH
	recoveries := float64(p.DPCount(qr)+p.DSCount(qr)+1) * p.CostS()
	combines := float64(qr*p.NC+p.DSCount(qr)) * p.CostK
	return hashes + recoveries + combines
}

// CompNaive is the Appendix computation formula: hashes for returned
// values, a recovery per filtered attribute, a recovery per result tuple,
// and a combine per attribute.
func (p Params) CompNaive(qr int) float64 {
	hashes := float64(qr*p.QC) * p.CostH
	recoveries := float64(p.DPCount(qr)+qr) * p.CostS()
	combines := float64(qr*p.NC) * p.CostK
	return hashes + recoveries + combines
}

// InsertCost is formula (11): digest the N_C attributes, combine them into
// the tuple digest, then fold the tuple digest into each node on the
// root-to-leaf path.
func (p Params) InsertCost() float64 {
	return float64(p.NC)*p.CostH + float64(p.NC)*p.CostK + float64(p.VBTreeHeight())*p.CostK
}

// DeleteCost is formula (12) for deleting qr contiguous tuples: the nodes
// on the top/left/right boundary of the enveloping subtree recompute their
// digests from up to (F−1) remaining entries, and each node from the
// subtree's top to the root recombines up to F child digests.
func (p Params) DeleteCost(qr int) float64 {
	if qr <= 0 {
		return 0
	}
	f := p.VBTreeFanOut()
	qh := p.EnvelopeHeight(qr)
	h := p.VBTreeHeight()
	boundary := float64(2*qh+1) * float64(f-1) * p.CostK
	upper := float64(h-qh) * float64(f) * p.CostK
	return boundary + upper
}

// ReshardCost is the cost of one online partition transition — the
// dynamic-resharding extension (the paper's trees are static). A
// transition rebuilds only the carved shard(s) and re-signs exactly the
// new roots plus the shard map, never the whole table, so the cost is a
// constant signature component plus a page-copy and re-digest component
// linear in the tuples that change shards.
type ReshardCost struct {
	// RootsResigned is the number of new shard roots signed: 2 for a
	// split (left and right child), 1 for a merge.
	RootsResigned int
	// SignOps adds the one map signature every transition commits on
	// top of the root re-signs.
	SignOps int
	// PagesMoved is the modeled page-write floor for building the
	// carved stores: perfectly packed tuple+leaf bytes plus the internal
	// levels' geometric overhead. The implementation's observed count
	// sits above this floor by its slotted-page and encoding overhead,
	// but scales linearly with it (pinned by the reshard cost test
	// against live server stats).
	PagesMoved int
	// Comp is the hash/combine work re-digesting the carved tuples into
	// the new tree(s), in Cost_h units — the CPU a transition pays
	// beyond its constant signatures.
	Comp float64
}

// reshardBuild models carving one new shard over n tuples: the pages
// written and the digest recomputation.
func (p Params) reshardBuild(n int) (pages int, comp float64) {
	if n <= 0 {
		return 0, 0
	}
	// Each tuple lands once in the new store: its payload plus a leaf
	// entry (key, pointer, digest). Internal levels repeat (key,
	// pointer, digest) entries at a geometric 1/(F−1) of the leaf bytes.
	perTuple := p.TupleSize() + p.K + p.P + p.D
	leafBytes := n * perTuple
	f := p.VBTreeFanOut()
	internalBytes := leafBytes / (f - 1)
	pages = (leafBytes+internalBytes+p.B-1)/p.B + 1 // +1: store header page
	// Re-digesting follows the insert formula (11) per carved tuple:
	// hash N_C attributes, combine into the tuple digest, fold one
	// combine per level of the (smaller) carved tree.
	comp = float64(n) * (float64(p.NC)*p.CostH + float64(p.NC)*p.CostK + float64(heightFor(f, n))*p.CostK)
	return pages, comp
}

// SplitCost models splitting one shard at a boundary that sends nLeft
// tuples to the left child and nRight to the right: both children are
// rebuilt, and exactly two roots plus the map are signed.
func (p Params) SplitCost(nLeft, nRight int) ReshardCost {
	lp, lc := p.reshardBuild(nLeft)
	rp, rc := p.reshardBuild(nRight)
	return ReshardCost{RootsResigned: 2, SignOps: 3, PagesMoved: lp + rp, Comp: lc + rc}
}

// MergeCost models merging two adjacent shards of nLeft and nRight
// tuples into one rebuilt shard: one root plus the map signed.
func (p Params) MergeCost(nLeft, nRight int) ReshardCost {
	pg, c := p.reshardBuild(nLeft + nRight)
	return ReshardCost{RootsResigned: 1, SignOps: 2, PagesMoved: pg, Comp: c}
}

// BarrierComp models the in-lock stall of an incremental transition's
// catch-up barrier: replaying `tail` buffered updates into the children
// (each one insert's digest work, formula (11)) plus the transition's
// constant signatures. The build itself — O(shard) — runs outside the
// lock and never appears here: the stall is O(tail), with the bound on
// `tail` set by the server's catch-up rounds (central's
// ReshardTailBound). Observed counterpart: the ReshardTailReplayed stat
// is the realized `tail`, ReshardBarrierStallMs the realized wall time.
func (p Params) BarrierComp(tail int) float64 {
	if tail < 0 {
		tail = 0
	}
	return float64(tail)*p.InsertCost() + float64(3)*p.CostS()
}

// QRForSelectivity converts a selectivity percentage into a result size.
func (p Params) QRForSelectivity(pct float64) int {
	qr := int(math.Round(float64(p.NR) * pct / 100))
	if qr < 0 {
		qr = 0
	}
	if qr > p.NR {
		qr = p.NR
	}
	return qr
}
