package costmodel

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.D = 0 },
		func(p *Params) { p.NR = 0 },
		func(p *Params) { p.QC = -1 },
		func(p *Params) { p.QC = p.NC + 1 },
		func(p *Params) { p.B = 8 },
	}
	for i, mutate := range cases {
		p := Default()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestFanOutRelationship(t *testing.T) {
	// Figure 8's shape: VB-tree fan-out strictly below B-tree fan-out,
	// both decreasing in key length, converging for large keys.
	prevB, prevVB := 1<<30, 1<<30
	for _, k := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		p := Default()
		p.K = k
		fb, fvb := p.BTreeFanOut(), p.VBTreeFanOut()
		if fvb >= fb {
			t.Errorf("K=%d: VB fan-out %d >= B fan-out %d", k, fvb, fb)
		}
		if fb > prevB || fvb > prevVB {
			t.Errorf("K=%d: fan-out increased", k)
		}
		prevB, prevVB = fb, fvb
	}
	// Convergence: the ratio at K=256 is far smaller than at K=1.
	small, large := Default(), Default()
	small.K, large.K = 1, 256
	r1 := float64(small.BTreeFanOut()) / float64(small.VBTreeFanOut())
	r2 := float64(large.BTreeFanOut()) / float64(large.VBTreeFanOut())
	if r2 >= r1 {
		t.Errorf("fan-out gap did not converge: %v -> %v", r1, r2)
	}
}

func TestHeightsNearlyEqual(t *testing.T) {
	// Figure 9: despite the fan-out gap, heights differ by <= 2 levels.
	for _, k := range []int{1, 4, 16, 64, 256} {
		p := Default()
		p.K = k
		hb, hvb := p.BTreeHeight(), p.VBTreeHeight()
		if hvb < hb {
			t.Errorf("K=%d: VB height %d below B height %d", k, hvb, hb)
		}
		if hvb-hb > 2 {
			t.Errorf("K=%d: height gap %d too large", k, hvb-hb)
		}
	}
}

func TestEnvelopeHeightBounds(t *testing.T) {
	p := Default()
	if got := p.EnvelopeHeight(1); got != 1 {
		t.Errorf("EnvelopeHeight(1) = %d", got)
	}
	if got := p.EnvelopeHeight(p.NR); got != p.VBTreeHeight() {
		t.Errorf("EnvelopeHeight(NR) = %d, want tree height %d", got, p.VBTreeHeight())
	}
	prev := 0
	for _, qr := range []int{1, 100, 10_000, 1_000_000} {
		h := p.EnvelopeHeight(qr)
		if h < prev {
			t.Errorf("envelope height decreased at qr=%d", qr)
		}
		prev = h
	}
}

func TestCommunicationOrdering(t *testing.T) {
	// Figure 10's shape: VB-tree below Naive at every selectivity, with
	// the gap growing as selectivity rises.
	for _, qc := range []int{2, 5, 8} {
		p := Default()
		p.QC = qc
		prevGap := -1.0
		for _, sel := range []float64{1, 20, 50, 80, 100} {
			qr := p.QRForSelectivity(sel)
			nv, vb := p.CommNaive(qr), p.CommVB(qr)
			if vb >= nv {
				t.Errorf("Qc=%d sel=%v: VB comm %d >= Naive %d", qc, sel, vb, nv)
			}
			gap := float64(nv - vb)
			if gap < prevGap {
				t.Errorf("Qc=%d sel=%v: gap shrank", qc, sel)
			}
			prevGap = gap
		}
	}
	// Cost grows with Qc (more attribute bytes returned).
	p2, p5 := Default(), Default()
	p2.QC, p5.QC = 2, 5
	qr := p2.QRForSelectivity(50)
	if p5.CommVB(qr) <= p2.CommVB(qr) {
		t.Error("communication cost did not grow with Qc")
	}
}

func TestFig11Convergence(t *testing.T) {
	// Figure 11: relative overhead shrinks as attribute size grows, but
	// the absolute Naive-minus-VB gap stays positive and significant.
	p := Default()
	qr := p.QRForSelectivity(80)
	var prevRatio float64 = math.Inf(1)
	for fac := 0; fac <= 6; fac++ {
		q := p
		q.AttrSize = q.D * (1 << fac)
		nv, vb := q.CommNaive(qr), q.CommVB(qr)
		ratio := float64(nv) / float64(vb)
		if ratio > prevRatio+1e-9 {
			t.Errorf("factor %d: ratio %v grew", fac, ratio)
		}
		prevRatio = ratio
		if nv-vb < 3_000_000 {
			t.Errorf("factor %d: absolute gap %d below ~MBs", fac, nv-vb)
		}
	}
}

func TestComputationOrdering(t *testing.T) {
	// Figure 12: VB-tree below Naive, difference widening with X.
	var prevGap float64
	for _, x := range []float64{5, 10, 100} {
		p := Default()
		p.X = x
		qr := p.QRForSelectivity(50)
		nv, vb := p.CompNaive(qr), p.CompVB(qr)
		if vb >= nv {
			t.Errorf("X=%v: VB comp %v >= Naive %v", x, vb, nv)
		}
		gap := nv - vb
		if gap <= prevGap {
			t.Errorf("X=%v: gap %v did not widen", x, gap)
		}
		prevGap = gap
	}
}

func TestFig13aGapNearlyConstant(t *testing.T) {
	// Figure 13(a): the Naive-minus-VB difference is dominated by
	// signature recoveries and barely moves with Cost_k.
	p := Default()
	p.X = 10
	qr := p.QRForSelectivity(80)
	base := p.CompNaive(qr) - p.CompVB(qr)
	for r := 0.0; r <= 3; r += 0.5 {
		q := p
		q.CostK = r
		gap := q.CompNaive(qr) - q.CompVB(qr)
		if math.Abs(gap-base)/base > 0.25 {
			t.Errorf("Cost_k=%v: gap %v drifted from %v", r, gap, base)
		}
	}
}

func TestFig13bOrderingStable(t *testing.T) {
	p := Default()
	p.X = 10
	for qc := 0; qc <= p.NC; qc++ {
		q := p
		q.QC = qc
		for _, sel := range []float64{20, 80} {
			qr := q.QRForSelectivity(sel)
			if q.CompVB(qr) >= q.CompNaive(qr) {
				t.Errorf("Qc=%d sel=%v: ordering flipped", qc, sel)
			}
		}
	}
}

func TestInsertCostLogarithmic(t *testing.T) {
	small, large := Default(), Default()
	small.NR, large.NR = 1_000, 100_000_000
	cs, cl := small.InsertCost(), large.InsertCost()
	if cl <= cs {
		t.Fatal("insert cost must grow with table size")
	}
	// Growth must be height-like (a few Cost_k), not linear in N_R.
	if cl-cs > 10*small.CostK*10 {
		t.Fatalf("insert cost growth %v looks non-logarithmic", cl-cs)
	}
}

func TestDeleteCostGrowsWithRange(t *testing.T) {
	p := Default()
	if p.DeleteCost(0) != 0 {
		t.Error("deleting nothing should cost nothing")
	}
	prev := 0.0
	for _, qr := range []int{1, 100, 10_000, 1_000_000} {
		c := p.DeleteCost(qr)
		if c < prev {
			t.Errorf("delete cost decreased at qr=%d", qr)
		}
		prev = c
	}
}

func TestQRForSelectivityClamps(t *testing.T) {
	p := Default()
	if got := p.QRForSelectivity(-5); got != 0 {
		t.Errorf("negative selectivity -> %d", got)
	}
	if got := p.QRForSelectivity(250); got != p.NR {
		t.Errorf("over-100%% selectivity -> %d", got)
	}
	if got := p.QRForSelectivity(50); got != p.NR/2 {
		t.Errorf("50%% -> %d", got)
	}
}

func TestAllFiguresRender(t *testing.T) {
	figs := AllFigures(Default())
	if len(figs) != 14 {
		t.Fatalf("AllFigures returned %d figures, want 14", len(figs))
	}
	var buf bytes.Buffer
	for _, f := range figs {
		if len(f.X) == 0 {
			t.Errorf("%s: empty x-axis", f.ID)
		}
		for _, s := range f.Series {
			if len(s.Y) != len(f.X) {
				t.Errorf("%s/%s: %d points for %d x values", f.ID, s.Name, len(s.Y), len(f.X))
			}
		}
		f.Render(&buf)
	}
	out := buf.String()
	for _, want := range []string{"F8", "F9", "F10(Qc=5)", "F11", "F12(X=10)", "F13a", "F13b", "UPD-I", "UPD-D", "UPD-S"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

func TestRenderTable1(t *testing.T) {
	var buf bytes.Buffer
	RenderTable1(&buf, Default())
	for _, want := range []string{"|D|", "N_R", "F_VB", "4096", "1000000"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Table 1 output missing %q", want)
		}
	}
}

func TestPaperDefaults(t *testing.T) {
	p := Default()
	if p.D != 16 || p.K != 16 || p.P != 4 || p.B != 4096 {
		t.Errorf("size defaults diverge from Table 1: %+v", p)
	}
	if p.NR != 1_000_000 || p.NC != 10 || p.QC != 10 {
		t.Errorf("cardinality defaults diverge from Table 1: %+v", p)
	}
	if p.X != 10 {
		t.Errorf("X default = %v, want 10", p.X)
	}
	if p.TupleSize() != 200 {
		t.Errorf("tuple size = %d, want 200 (paper §4.2)", p.TupleSize())
	}
	if p.CostS() != 10 {
		t.Errorf("CostS = %v", p.CostS())
	}
}

// TestShardedUpdateCost pins the shape of the sharded insert-cost
// curves: total signing work grows (one root path per extra shard)
// while the critical path with enough cores falls monotonically.
func TestShardedUpdateCost(t *testing.T) {
	f := ShardedUpdateCost(Default())
	total, critical := f.Series[0].Y, f.Series[1].Y
	for i := 1; i < len(f.X); i++ {
		if critical[i] >= critical[i-1] {
			t.Errorf("critical path did not shrink from %d to %d shards (%.0f -> %.0f)",
				int(f.X[i-1]), int(f.X[i]), critical[i-1], critical[i])
		}
		if total[i] < total[i-1] {
			t.Errorf("total signing work shrank from %d to %d shards (%.0f -> %.0f) — heights cannot do that",
				int(f.X[i-1]), int(f.X[i]), total[i-1], total[i])
		}
	}
	// At 1 shard the two series coincide (no parallelism to exploit).
	if total[0] != critical[0] {
		t.Errorf("1-shard total %.0f != critical %.0f", total[0], critical[0])
	}
}
