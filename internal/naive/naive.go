// Package naive implements the baseline authentication strategy of the
// paper's Appendix (Figure 14): the central server maintains a signed
// digest for every attribute and a signed digest for every tuple; an edge
// server answers a query by shipping, alongside each result tuple, its
// signed tuple digest plus the signed digests of every projected-out
// attribute. The client then verifies each tuple independently:
//
//	s⁻¹(D_T) = Π g(d_a)   over all attributes a of the tuple,
//
// computing d_a with the one-way hash for returned values and recovering
// it from the shipped signature for filtered ones.
//
// Compared to the VB-tree, Naive needs one signature *recovery per result
// tuple* (the dominating cost of Figure 12) and ships one signed digest per
// result tuple (the transmission gap of Figures 10–11). It also provides
// no defense against spurious tuples — any properly signed tuple from the
// table passes — which is part of what the VB-tree's enveloping subtree
// adds.
package naive

import (
	"errors"
	"fmt"
	"sort"

	"edgeauth/internal/digest"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/vo"
)

// Store is the edge-side replica for the Naive scheme: tuples with their
// per-attribute signatures and per-tuple signatures, ordered by key.
type Store struct {
	sch     *schema.Schema
	acc     *digest.Accumulator
	keys    [][]byte // order-preserving key encodings, ascending
	stored  []*vo.StoredTuple
	tupSigs []sig.Signature
}

// BuildStore signs every attribute and tuple digest with the central
// server's key, mirroring what the paper's naive central server maintains.
func BuildStore(sch *schema.Schema, acc *digest.Accumulator, signer *sig.PrivateKey, tuples []schema.Tuple) (*Store, error) {
	if err := sch.Validate(); err != nil {
		return nil, err
	}
	if acc == nil || signer == nil {
		return nil, errors.New("naive: accumulator and signer required")
	}
	s := &Store{sch: sch, acc: acc}
	for i, tup := range tuples {
		if len(tup.Values) != len(sch.Columns) {
			return nil, fmt.Errorf("naive: tuple %d has %d values for %d columns", i, len(tup.Values), len(sch.Columns))
		}
		keyBytes := tup.Key(sch).KeyBytes()
		st := &vo.StoredTuple{Tuple: tup, AttrSigs: make([]sig.Signature, len(tup.Values))}
		tAcc := acc.NewAcc()
		for c, val := range tup.Values {
			if val.Type != sch.Columns[c].Type {
				return nil, fmt.Errorf("naive: tuple %d column %q type mismatch", i, sch.Columns[c].Name)
			}
			d := acc.HashAttribute(sch.DB, sch.Table, sch.Columns[c].Name, keyBytes, val.CanonicalBytes())
			as, err := signer.Sign(d)
			if err != nil {
				return nil, err
			}
			st.AttrSigs[c] = as
			if err := tAcc.Add(d); err != nil {
				return nil, err
			}
		}
		ts, err := signer.Sign(tAcc.Value())
		if err != nil {
			return nil, err
		}
		s.keys = append(s.keys, keyBytes)
		s.stored = append(s.stored, st)
		s.tupSigs = append(s.tupSigs, ts)
	}
	for i := 1; i < len(s.keys); i++ {
		if compareBytes(s.keys[i-1], s.keys[i]) >= 0 {
			return nil, fmt.Errorf("naive: tuples not in strictly increasing key order at %d", i)
		}
	}
	return s, nil
}

// Len returns the number of tuples.
func (s *Store) Len() int { return len(s.keys) }

// VO is the Naive verification payload: one signed tuple digest per result
// tuple, plus the signed digests of that tuple's filtered attributes.
type VO struct {
	// KeyVersion of the signing key.
	KeyVersion uint32
	// TupleSigs[i] is D_T of result tuple i.
	TupleSigs []sig.Signature
	// FilteredSigs[i] holds result tuple i's filtered-attribute
	// signatures, ordered by ascending schema column index.
	FilteredSigs [][]sig.Signature
}

// NumDigests counts the signed digests shipped.
func (v *VO) NumDigests() int {
	n := len(v.TupleSigs)
	for _, fs := range v.FilteredSigs {
		n += len(fs)
	}
	return n
}

// WireSize returns the encoded payload size: the byte accounting used for
// the Figure 10/11 comparison.
func (v *VO) WireSize() int {
	sz := 4 + 4
	for _, s := range v.TupleSigs {
		sz += 4 + len(s)
	}
	for _, fs := range v.FilteredSigs {
		sz += 4
		for _, s := range fs {
			sz += 4 + len(s)
		}
	}
	return sz
}

// Query mirrors the VB-tree's query shape.
type Query struct {
	Lo, Hi  *schema.Datum
	Filter  func(schema.Tuple) bool
	Project []string
}

// RunQuery answers q with a result set and the Naive VO.
func (s *Store) RunQuery(q Query, keyVersion uint32) (*vo.ResultSet, *VO, error) {
	projIdx, projCols, err := s.resolveProjection(q.Project)
	if err != nil {
		return nil, nil, err
	}
	inProj := make([]bool, len(s.sch.Columns))
	for _, ci := range projIdx {
		inProj[ci] = true
	}

	lo := 0
	if q.Lo != nil {
		lb := q.Lo.KeyBytes()
		lo = sort.Search(len(s.keys), func(i int) bool { return compareBytes(s.keys[i], lb) >= 0 })
	}
	rs := &vo.ResultSet{DB: s.sch.DB, Table: s.sch.Table, Columns: projCols}
	nv := &VO{KeyVersion: keyVersion}
	var hiB []byte
	if q.Hi != nil {
		hiB = q.Hi.KeyBytes()
	}
	for i := lo; i < len(s.keys); i++ {
		if hiB != nil && compareBytes(s.keys[i], hiB) > 0 {
			break
		}
		st := s.stored[i]
		if q.Filter != nil && !q.Filter(st.Tuple) {
			continue
		}
		rs.Keys = append(rs.Keys, st.Tuple.Key(s.sch))
		vals := make([]schema.Datum, len(projIdx))
		for j, ci := range projIdx {
			vals[j] = st.Tuple.Values[ci]
		}
		rs.Tuples = append(rs.Tuples, schema.Tuple{Values: vals})
		nv.TupleSigs = append(nv.TupleSigs, s.tupSigs[i].Clone())
		var fs []sig.Signature
		for ci := range s.sch.Columns {
			if !inProj[ci] {
				fs = append(fs, st.AttrSigs[ci].Clone())
			}
		}
		nv.FilteredSigs = append(nv.FilteredSigs, fs)
	}
	return rs, nv, nil
}

func (s *Store) resolveProjection(cols []string) ([]int, []string, error) {
	if cols == nil {
		idx := make([]int, len(s.sch.Columns))
		names := make([]string, len(s.sch.Columns))
		for i, c := range s.sch.Columns {
			idx[i] = i
			names[i] = c.Name
		}
		return idx, names, nil
	}
	if len(cols) == 0 {
		return nil, nil, errors.New("naive: empty projection")
	}
	idx := make([]int, len(cols))
	seen := make(map[string]bool)
	for i, name := range cols {
		ci := s.sch.ColumnIndex(name)
		if ci < 0 {
			return nil, nil, fmt.Errorf("naive: unknown column %q", name)
		}
		if seen[name] {
			return nil, nil, fmt.Errorf("naive: duplicate column %q", name)
		}
		seen[name] = true
		idx[i] = ci
	}
	return idx, cols, nil
}

// Verify checks a Naive result tuple-by-tuple against the public key.
func Verify(sch *schema.Schema, acc *digest.Accumulator, pub *sig.PublicKey, rs *vo.ResultSet, nv *VO) error {
	if err := rs.Validate(); err != nil {
		return err
	}
	if rs.DB != sch.DB || rs.Table != sch.Table {
		return fmt.Errorf("naive: result identity %s.%s does not match schema", rs.DB, rs.Table)
	}
	if len(nv.TupleSigs) != len(rs.Tuples) || len(nv.FilteredSigs) != len(rs.Tuples) {
		return fmt.Errorf("naive: VO carries %d tuple digests for %d tuples", len(nv.TupleSigs), len(rs.Tuples))
	}
	colIdx := make([]int, len(rs.Columns))
	inProj := make([]bool, len(sch.Columns))
	for i, name := range rs.Columns {
		ci := sch.ColumnIndex(name)
		if ci < 0 {
			return fmt.Errorf("naive: unknown column %q", name)
		}
		colIdx[i] = ci
		inProj[ci] = true
	}
	nFiltered := len(sch.Columns) - len(rs.Columns)
	for j := range rs.Tuples {
		if len(nv.FilteredSigs[j]) != nFiltered {
			return fmt.Errorf("naive: tuple %d ships %d filtered digests, want %d", j, len(nv.FilteredSigs[j]), nFiltered)
		}
		keyBytes := rs.Keys[j].KeyBytes()
		tAcc := acc.NewAcc()
		for i, ci := range colIdx {
			val := rs.Tuples[j].Values[i]
			if val.Type != sch.Columns[ci].Type {
				return fmt.Errorf("naive: tuple %d column %q type mismatch", j, rs.Columns[i])
			}
			d := acc.HashAttribute(sch.DB, sch.Table, sch.Columns[ci].Name, keyBytes, val.CanonicalBytes())
			if err := tAcc.Add(d); err != nil {
				return err
			}
		}
		for _, fs := range nv.FilteredSigs[j] {
			u, err := pub.Recover(fs)
			if err != nil {
				return fmt.Errorf("naive: tuple %d filtered attribute: %w", j, err)
			}
			if len(u) != acc.Len() {
				return fmt.Errorf("naive: tuple %d: recovered digest wrong length", j)
			}
			if err := tAcc.Add(digest.Value(u)); err != nil {
				return err
			}
		}
		ut, err := pub.Recover(nv.TupleSigs[j])
		if err != nil {
			return fmt.Errorf("naive: tuple %d digest: %w", j, err)
		}
		if !digest.Value(ut).Equal(tAcc.Value()) {
			return fmt.Errorf("naive: tuple %d failed verification", j)
		}
	}
	return nil
}

func compareBytes(a, b []byte) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}
