package naive

import (
	"fmt"
	"sync"
	"testing"

	"edgeauth/internal/digest"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
)

var (
	keyOnce sync.Once
	testKey *sig.PrivateKey
)

func signer(t testing.TB) *sig.PrivateKey {
	t.Helper()
	keyOnce.Do(func() { testKey = sig.MustGenerateKey(512) })
	return testKey
}

func testSchema() *schema.Schema {
	return &schema.Schema{
		DB:    "edgedb",
		Table: "orders",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TypeInt64},
			{Name: "customer", Type: schema.TypeString},
			{Name: "amount", Type: schema.TypeFloat64},
		},
		Key: 0,
	}
}

func mkTuple(i int) schema.Tuple {
	return schema.NewTuple(
		schema.Int64(int64(i)),
		schema.Str(fmt.Sprintf("cust-%d", i%5)),
		schema.Float64(float64(i)*2.5),
	)
}

func buildStore(t testing.TB, n int) (*Store, *sig.PrivateKey, *digest.Accumulator) {
	t.Helper()
	k := signer(t)
	acc := digest.MustNew(digest.DefaultParams())
	tuples := make([]schema.Tuple, n)
	for i := range tuples {
		tuples[i] = mkTuple(i)
	}
	s, err := BuildStore(testSchema(), acc, k, tuples)
	if err != nil {
		t.Fatal(err)
	}
	return s, k, acc
}

func i64(v int) *schema.Datum {
	d := schema.Int64(int64(v))
	return &d
}

func TestBuildStoreValidation(t *testing.T) {
	k := signer(t)
	acc := digest.MustNew(digest.DefaultParams())
	if _, err := BuildStore(testSchema(), acc, nil, nil); err == nil {
		t.Fatal("nil signer accepted")
	}
	if _, err := BuildStore(testSchema(), acc, k, []schema.Tuple{mkTuple(2), mkTuple(1)}); err == nil {
		t.Fatal("unsorted tuples accepted")
	}
	bad := mkTuple(0)
	bad.Values = bad.Values[:2]
	if _, err := BuildStore(testSchema(), acc, k, []schema.Tuple{bad}); err == nil {
		t.Fatal("short tuple accepted")
	}
}

func TestNaiveQueryAndVerify(t *testing.T) {
	s, k, acc := buildStore(t, 100)
	if s.Len() != 100 {
		t.Fatalf("Len = %d", s.Len())
	}
	rs, nv, err := s.RunQuery(Query{Lo: i64(10), Hi: i64(29)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Tuples) != 20 {
		t.Fatalf("got %d tuples", len(rs.Tuples))
	}
	if len(nv.TupleSigs) != 20 {
		t.Fatalf("VO has %d tuple digests", len(nv.TupleSigs))
	}
	if nv.NumDigests() != 20 {
		t.Fatalf("NumDigests = %d, want 20 (no projection)", nv.NumDigests())
	}
	if err := Verify(testSchema(), acc, k.Public(), rs, nv); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestNaiveProjection(t *testing.T) {
	s, k, acc := buildStore(t, 50)
	rs, nv, err := s.RunQuery(Query{Lo: i64(0), Hi: i64(9), Project: []string{"id"}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 10 tuple digests + 10 tuples × 2 filtered attributes.
	if nv.NumDigests() != 10+20 {
		t.Fatalf("NumDigests = %d, want 30", nv.NumDigests())
	}
	if err := Verify(testSchema(), acc, k.Public(), rs, nv); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if nv.WireSize() <= 0 {
		t.Fatal("WireSize must be positive")
	}
}

func TestNaiveFilter(t *testing.T) {
	s, k, acc := buildStore(t, 100)
	rs, nv, err := s.RunQuery(Query{
		Filter: func(tp schema.Tuple) bool { return tp.Values[1].S == "cust-3" },
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Tuples) != 20 {
		t.Fatalf("filter matched %d", len(rs.Tuples))
	}
	if err := Verify(testSchema(), acc, k.Public(), rs, nv); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestNaiveTamperRejected(t *testing.T) {
	s, k, acc := buildStore(t, 60)
	rs, nv, err := s.RunQuery(Query{Lo: i64(5), Hi: i64(15)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	rs.Tuples[3].Values[2] = schema.Float64(1e9)
	if err := Verify(testSchema(), acc, k.Public(), rs, nv); err == nil {
		t.Fatal("tampered value accepted")
	}
}

func TestNaiveForgedSigRejected(t *testing.T) {
	s, k, acc := buildStore(t, 60)
	rs, nv, err := s.RunQuery(Query{Lo: i64(5), Hi: i64(15), Project: []string{"id"}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	nv.FilteredSigs[0][0][5] ^= 0x80
	if err := Verify(testSchema(), acc, k.Public(), rs, nv); err == nil {
		t.Fatal("forged filtered-attribute signature accepted")
	}
}

func TestNaiveCannotDetectSpuriousSignedTuple(t *testing.T) {
	// The known weakness: a tuple legally signed by the central server can
	// be injected into any result, and Naive verification still passes.
	// (The VB-tree's enveloping subtree is what closes this hole.)
	s, k, acc := buildStore(t, 60)
	rs, nv, err := s.RunQuery(Query{Lo: i64(5), Hi: i64(9)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Steal tuple 50 (outside the range) with its genuine signature.
	rs2, nv2, err := s.RunQuery(Query{Lo: i64(50), Hi: i64(50)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	rs.Keys = append(rs.Keys, rs2.Keys[0])
	rs.Tuples = append(rs.Tuples, rs2.Tuples[0])
	nv.TupleSigs = append(nv.TupleSigs, nv2.TupleSigs[0])
	nv.FilteredSigs = append(nv.FilteredSigs, nv2.FilteredSigs[0])
	if err := Verify(testSchema(), acc, k.Public(), rs, nv); err != nil {
		t.Fatalf("documented naive weakness changed behaviour: %v", err)
	}
}

func TestNaiveVerifyValidation(t *testing.T) {
	s, k, acc := buildStore(t, 20)
	rs, nv, err := s.RunQuery(Query{Lo: i64(0), Hi: i64(5)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Mismatched digest count.
	short := &VO{TupleSigs: nv.TupleSigs[:2], FilteredSigs: nv.FilteredSigs[:2]}
	if err := Verify(testSchema(), acc, k.Public(), rs, short); err == nil {
		t.Fatal("short VO accepted")
	}
	// Wrong table.
	rs.Table = "other"
	if err := Verify(testSchema(), acc, k.Public(), rs, nv); err == nil {
		t.Fatal("wrong table accepted")
	}
}

func TestNaiveQueryValidation(t *testing.T) {
	s, _, _ := buildStore(t, 10)
	if _, _, err := s.RunQuery(Query{Project: []string{"ghost"}}, 0); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, _, err := s.RunQuery(Query{Project: []string{}}, 0); err == nil {
		t.Fatal("empty projection accepted")
	}
	if _, _, err := s.RunQuery(Query{Project: []string{"id", "id"}}, 0); err == nil {
		t.Fatal("duplicate projection accepted")
	}
}
