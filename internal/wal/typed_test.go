package wal

import (
	"path/filepath"
	"testing"

	"edgeauth/internal/schema"
)

func testTuple(id int64, payload string) schema.Tuple {
	return schema.Tuple{Values: []schema.Datum{schema.Int64(id), schema.Str(payload)}}
}

func TestTypedRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "typed.wal")
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(RecInsert, EncodeInsertPayload(testTuple(7, "seven"))); err != nil {
		t.Fatal(err)
	}
	lo, hi := schema.Int64(3), schema.Int64(9)
	if _, err := l.Append(RecDelete, EncodeDeletePayload(&lo, nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(RecDelete, EncodeDeletePayload(&lo, &hi)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(RecDelete, EncodeDeletePayload(nil, nil)); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var ops []Op
	if err := ReplayOps(path, func(op Op) error {
		ops = append(ops, op)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(ops) != 4 {
		t.Fatalf("replayed %d ops, want 4", len(ops))
	}
	if ops[0].Kind != RecInsert || ops[0].LSN != 1 {
		t.Fatalf("op0 = %+v", ops[0])
	}
	if got := ops[0].Tuple.Values[0].I; got != 7 {
		t.Fatalf("insert key = %d", got)
	}
	if ops[1].Kind != RecDelete || ops[1].Lo == nil || ops[1].Hi != nil {
		t.Fatalf("op1 = %+v", ops[1])
	}
	if ops[2].Lo.I != 3 || ops[2].Hi.I != 9 {
		t.Fatalf("op2 bounds = %v %v", ops[2].Lo, ops[2].Hi)
	}
	if ops[3].Lo != nil || ops[3].Hi != nil {
		t.Fatalf("op3 bounds = %v %v", ops[3].Lo, ops[3].Hi)
	}
}

func TestParseOpRejectsGarbage(t *testing.T) {
	if _, err := ParseOp(Record{LSN: 1, Type: RecInsert, Payload: []byte{0xFF}}); err == nil {
		t.Fatal("garbage insert payload accepted")
	}
	if _, err := ParseOp(Record{LSN: 1, Type: RecDelete, Payload: []byte{1}}); err == nil {
		t.Fatal("truncated delete payload accepted")
	}
	if _, err := ParseOp(Record{LSN: 1, Type: RecordType(99)}); err == nil {
		t.Fatal("unknown record type accepted")
	}
	op, err := ParseOp(Record{LSN: 5, Type: RecCheckpoint})
	if err != nil || op.LSN != 5 || op.Kind != RecCheckpoint {
		t.Fatalf("checkpoint parse: %+v, %v", op, err)
	}
}
