// Package wal implements a write-ahead log for the central server's
// update transactions. Inserts and deletes are logged before the VB-tree
// and its digests are modified, so a crash mid-update can be recovered by
// replaying the log against the last snapshot (redo logging).
//
// Record format (all big-endian):
//
//	crc32(4) | length(4) | lsn(8) | type(1) | payload
//
// where crc32 covers everything after itself. Replay stops cleanly at the
// first torn or corrupt record, which is the expected state after a crash
// during Append.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// RecordType tags what a log record describes.
type RecordType uint8

const (
	// RecInsert logs a tuple insert; payload is the encoded tuple.
	RecInsert RecordType = iota + 1
	// RecDelete logs a key-range delete; payload encodes the range.
	RecDelete
	// RecCheckpoint marks that all prior records are reflected in a
	// durable snapshot and can be skipped on recovery.
	RecCheckpoint
	// RecBatch logs a group-committed insert batch as one record (one
	// append, one fsync for the whole batch); payload encodes the tuples.
	RecBatch
	// RecReshard logs a partition transition (online shard split or
	// merge) in the table's meta log; payload encodes the transition so
	// restart recovery replays the partition history, not just the
	// per-shard tuple histories.
	RecReshard
	// RecReshardBegin marks the start of an incremental transition's
	// build phase in the meta log. A Begin with no matching RecReshard
	// or RecReshardAbort means the process died mid-build; the child
	// WALs it names are garbage, the parent generation is authoritative.
	RecReshardBegin
	// RecReshardAbort marks a begun transition as abandoned (build or
	// catch-up failed); the parent generation remains authoritative.
	RecReshardAbort
)

func (r RecordType) String() string {
	switch r {
	case RecInsert:
		return "insert"
	case RecDelete:
		return "delete"
	case RecCheckpoint:
		return "checkpoint"
	case RecBatch:
		return "batch"
	case RecReshard:
		return "reshard"
	case RecReshardBegin:
		return "reshard-begin"
	case RecReshardAbort:
		return "reshard-abort"
	default:
		return fmt.Sprintf("RecordType(%d)", uint8(r))
	}
}

// Record is one log entry.
type Record struct {
	LSN     uint64
	Type    RecordType
	Payload []byte
}

const headerSize = 4 + 4 + 8 + 1

// Log is an append-only write-ahead log backed by a file.
type Log struct {
	mu      sync.Mutex
	f       *os.File
	nextLSN uint64
	size    int64
}

// Create creates (truncating) a log at path.
func Create(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: creating log: %w", err)
	}
	return &Log{f: f, nextLSN: 1}, nil
}

// Open opens an existing log, scanning it to find the next LSN and the
// valid prefix length. A torn tail is truncated away.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: opening log: %w", err)
	}
	l := &Log{f: f, nextLSN: 1}
	recs, validLen, err := scan(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if len(recs) > 0 {
		l.nextLSN = recs[len(recs)-1].LSN + 1
	}
	l.size = validLen
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
	}
	return l, nil
}

// Append writes a record and returns its LSN. The record is durable only
// after Sync.
func (l *Log) Append(t RecordType, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return 0, errors.New("wal: log closed")
	}
	lsn := l.nextLSN
	buf := make([]byte, headerSize+len(payload))
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(payload)))
	binary.BigEndian.PutUint64(buf[8:16], lsn)
	buf[16] = byte(t)
	copy(buf[headerSize:], payload)
	crc := crc32.ChecksumIEEE(buf[4:])
	binary.BigEndian.PutUint32(buf[0:4], crc)
	if _, err := l.f.WriteAt(buf, l.size); err != nil {
		return 0, fmt.Errorf("wal: appending record: %w", err)
	}
	l.size += int64(len(buf))
	l.nextLSN++
	return lsn, nil
}

// Sync flushes the log to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: log closed")
	}
	return l.f.Sync()
}

// Close closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// NextLSN returns the LSN the next Append will use.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// Replay calls fn for every record after the last checkpoint, in order.
// Use ReplayAll to include pre-checkpoint records.
func Replay(path string, fn func(Record) error) error {
	return replay(path, fn, true)
}

// ReplayAll calls fn for every valid record in the log.
func ReplayAll(path string, fn func(Record) error) error {
	return replay(path, fn, false)
}

func replay(path string, fn func(Record) error, fromCheckpoint bool) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: opening log for replay: %w", err)
	}
	defer f.Close()
	recs, _, err := scan(f)
	if err != nil {
		return err
	}
	start := 0
	if fromCheckpoint {
		for i, r := range recs {
			if r.Type == RecCheckpoint {
				start = i + 1
			}
		}
	}
	for _, r := range recs[start:] {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// scan reads the valid record prefix, returning the records and the byte
// length of the valid prefix.
func scan(f *os.File) ([]Record, int64, error) {
	var recs []Record
	var off int64
	hdr := make([]byte, headerSize)
	for {
		if _, err := f.ReadAt(hdr, off); err != nil {
			if errors.Is(err, io.EOF) {
				return recs, off, nil
			}
			return nil, 0, fmt.Errorf("wal: reading header: %w", err)
		}
		plen := int(binary.BigEndian.Uint32(hdr[4:8]))
		if plen < 0 || plen > 1<<30 {
			return recs, off, nil // corrupt length: treat as torn tail
		}
		buf := make([]byte, headerSize+plen)
		if _, err := f.ReadAt(buf, off); err != nil {
			return recs, off, nil // torn record
		}
		wantCRC := binary.BigEndian.Uint32(buf[0:4])
		if crc32.ChecksumIEEE(buf[4:]) != wantCRC {
			return recs, off, nil // corrupt record: stop
		}
		recs = append(recs, Record{
			LSN:     binary.BigEndian.Uint64(buf[8:16]),
			Type:    RecordType(buf[16]),
			Payload: append([]byte(nil), buf[headerSize:]...),
		})
		off += int64(len(buf))
	}
}
