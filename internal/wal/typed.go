package wal

import (
	"encoding/binary"
	"errors"
	"fmt"

	"edgeauth/internal/schema"
)

// Typed records: the logical view of the log the central server replays to
// derive delta updates for edge replicas. The payload encodings here are
// the single source of truth — the central server writes them, recovery
// and delta propagation read them back.

// Op is a parsed log record: the logical update a record describes.
type Op struct {
	LSN  uint64
	Kind RecordType
	// Tuple is set for RecInsert.
	Tuple schema.Tuple
	// Tuples is set for RecBatch (a group-committed insert batch).
	Tuples []schema.Tuple
	// Lo/Hi bound the key range for RecDelete; nil means unbounded.
	Lo, Hi *schema.Datum
	// Reshard is set for RecReshard (a partition split/merge transition
	// in a table's meta log) and for RecReshardBegin/RecReshardAbort
	// (the incremental transition's build-phase bracket records).
	Reshard *ReshardOp
	// Checkpoint is set for a RecCheckpoint in a table's meta log whose
	// payload carries the full partition state; nil for the bare
	// per-shard checkpoint records.
	Checkpoint *PartitionCheckpoint
}

// EncodeInsertPayload serializes an insert's payload.
func EncodeInsertPayload(tup schema.Tuple) []byte { return tup.EncodeBytes() }

// EncodeBatchPayload serializes a group-committed insert batch:
// u32 count, then each tuple's encoding.
func EncodeBatchPayload(tuples []schema.Tuple) []byte {
	out := make([]byte, 4)
	binary.BigEndian.PutUint32(out, uint32(len(tuples)))
	for _, tup := range tuples {
		out = tup.Encode(out)
	}
	return out
}

// DecodeBatchPayload parses a payload written by EncodeBatchPayload.
func DecodeBatchPayload(payload []byte) ([]schema.Tuple, error) {
	if len(payload) < 4 {
		return nil, errors.New("wal: truncated batch payload")
	}
	count := int(binary.BigEndian.Uint32(payload))
	if count < 0 || count > len(payload) {
		return nil, fmt.Errorf("wal: implausible batch count %d", count)
	}
	off := 4
	tuples := make([]schema.Tuple, 0, count)
	for i := 0; i < count; i++ {
		tup, used, err := schema.DecodeTuple(payload[off:])
		if err != nil {
			return nil, fmt.Errorf("wal: batch tuple %d: %w", i, err)
		}
		off += used
		tuples = append(tuples, tup)
	}
	if off != len(payload) {
		return nil, errors.New("wal: trailing bytes in batch payload")
	}
	return tuples, nil
}

// EncodeDeletePayload serializes a key-range delete's payload:
// presence byte + datum for each bound.
func EncodeDeletePayload(lo, hi *schema.Datum) []byte {
	var out []byte
	for _, d := range []*schema.Datum{lo, hi} {
		if d != nil {
			out = append(out, 1)
			out = d.Encode(out)
		} else {
			out = append(out, 0)
		}
	}
	return out
}

// DecodeDeletePayload parses a payload written by EncodeDeletePayload.
func DecodeDeletePayload(payload []byte) (lo, hi *schema.Datum, err error) {
	off := 0
	bounds := [2]*schema.Datum{}
	for i := range bounds {
		if off >= len(payload) {
			return nil, nil, errors.New("wal: truncated delete payload")
		}
		present := payload[off]
		off++
		if present == 0 {
			continue
		}
		d, used, err := schema.DecodeDatum(payload[off:])
		if err != nil {
			return nil, nil, fmt.Errorf("wal: delete bound %d: %w", i, err)
		}
		off += used
		bounds[i] = &d
	}
	if off != len(payload) {
		return nil, nil, errors.New("wal: trailing bytes in delete payload")
	}
	return bounds[0], bounds[1], nil
}

// ParseOp decodes a record into its logical operation. Checkpoint records
// parse to an Op with only LSN and Kind set.
func ParseOp(r Record) (Op, error) {
	op := Op{LSN: r.LSN, Kind: r.Type}
	switch r.Type {
	case RecInsert:
		tup, used, err := schema.DecodeTuple(r.Payload)
		if err != nil {
			return Op{}, fmt.Errorf("wal: insert record %d: %w", r.LSN, err)
		}
		if used != len(r.Payload) {
			return Op{}, fmt.Errorf("wal: insert record %d has trailing bytes", r.LSN)
		}
		op.Tuple = tup
	case RecDelete:
		lo, hi, err := DecodeDeletePayload(r.Payload)
		if err != nil {
			return Op{}, fmt.Errorf("wal: delete record %d: %w", r.LSN, err)
		}
		op.Lo, op.Hi = lo, hi
	case RecBatch:
		tuples, err := DecodeBatchPayload(r.Payload)
		if err != nil {
			return Op{}, fmt.Errorf("wal: batch record %d: %w", r.LSN, err)
		}
		op.Tuples = tuples
	case RecReshard, RecReshardBegin, RecReshardAbort:
		rop, err := DecodeReshardPayload(r.Payload)
		if err != nil {
			return Op{}, fmt.Errorf("wal: reshard record %d: %w", r.LSN, err)
		}
		op.Reshard = rop
	case RecCheckpoint:
		if len(r.Payload) > 0 {
			cp, err := DecodePartitionCheckpoint(r.Payload)
			if err != nil {
				return Op{}, fmt.Errorf("wal: checkpoint record %d: %w", r.LSN, err)
			}
			op.Checkpoint = cp
		}
	default:
		return Op{}, fmt.Errorf("wal: record %d has unknown type %v", r.LSN, r.Type)
	}
	return op, nil
}

// ReplayOps calls fn with the typed form of every record after the last
// checkpoint, in LSN order. Batch records are flattened into one RecInsert
// op per tuple (sharing the batch's LSN), so consumers replay the same
// logical history whether the writes were group-committed or not.
func ReplayOps(path string, fn func(Op) error) error {
	return Replay(path, func(r Record) error {
		op, err := ParseOp(r)
		if err != nil {
			return err
		}
		if op.Kind == RecBatch {
			for _, tup := range op.Tuples {
				if err := fn(Op{LSN: op.LSN, Kind: RecInsert, Tuple: tup}); err != nil {
					return err
				}
			}
			return nil
		}
		return fn(op)
	})
}
