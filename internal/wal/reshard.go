package wal

import (
	"encoding/binary"
	"errors"
	"fmt"

	"edgeauth/internal/schema"
)

// ReshardOp is the typed payload of a RecReshard record: one online
// partition transition. The central server appends it to the table's
// meta log before publishing the new map epoch, so restart recovery can
// replay the partition history — which shard WALs exist, which are
// retired — alongside the per-shard tuple histories.
type ReshardOp struct {
	// Split is true for a boundary insert (one shard became two), false
	// for a merge (two adjacent shards became one).
	Split bool
	// Shard is the partition index the transition applied to in the
	// parent generation: the shard that was split, or the left shard of
	// the merged pair.
	Shard uint32
	// Boundary is the inserted split key (splits only; nil for merges —
	// the removed boundary is implied by Shard).
	Boundary *schema.Datum
	// RetiredIDs and NewIDs are the stable shard identities destroyed
	// and created by the transition (1->2 for a split, 2->1 for a merge).
	RetiredIDs []uint64
	NewIDs     []uint64
	// MapEpoch and ParentEpoch mirror the signed map's generation link.
	MapEpoch    uint64
	ParentEpoch uint64
}

// EncodeReshardPayload serializes a transition record.
func EncodeReshardPayload(op *ReshardOp) []byte {
	var out []byte
	if op.Split {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	var u4 [4]byte
	var u8 [8]byte
	binary.BigEndian.PutUint32(u4[:], op.Shard)
	out = append(out, u4[:]...)
	if op.Boundary != nil {
		out = append(out, 1)
		out = op.Boundary.Encode(out)
	} else {
		out = append(out, 0)
	}
	for _, ids := range [][]uint64{op.RetiredIDs, op.NewIDs} {
		binary.BigEndian.PutUint32(u4[:], uint32(len(ids)))
		out = append(out, u4[:]...)
		for _, id := range ids {
			binary.BigEndian.PutUint64(u8[:], id)
			out = append(out, u8[:]...)
		}
	}
	binary.BigEndian.PutUint64(u8[:], op.MapEpoch)
	out = append(out, u8[:]...)
	binary.BigEndian.PutUint64(u8[:], op.ParentEpoch)
	out = append(out, u8[:]...)
	return out
}

// DecodeReshardPayload parses a payload written by EncodeReshardPayload.
func DecodeReshardPayload(payload []byte) (*ReshardOp, error) {
	op := &ReshardOp{}
	off := 0
	need := func(n int) bool { return off+n <= len(payload) }
	if !need(5) {
		return nil, errors.New("wal: truncated reshard payload")
	}
	op.Split = payload[off] == 1
	off++
	op.Shard = binary.BigEndian.Uint32(payload[off:])
	off += 4
	if !need(1) {
		return nil, errors.New("wal: truncated reshard payload")
	}
	hasBoundary := payload[off] == 1
	off++
	if hasBoundary {
		d, used, err := schema.DecodeDatum(payload[off:])
		if err != nil {
			return nil, fmt.Errorf("wal: reshard boundary: %w", err)
		}
		off += used
		op.Boundary = &d
	}
	for _, dst := range []*[]uint64{&op.RetiredIDs, &op.NewIDs} {
		if !need(4) {
			return nil, errors.New("wal: truncated reshard payload")
		}
		n := int(binary.BigEndian.Uint32(payload[off:]))
		off += 4
		if n < 0 || n > len(payload) {
			return nil, fmt.Errorf("wal: implausible reshard ID count %d", n)
		}
		for i := 0; i < n; i++ {
			if !need(8) {
				return nil, errors.New("wal: truncated reshard payload")
			}
			*dst = append(*dst, binary.BigEndian.Uint64(payload[off:]))
			off += 8
		}
	}
	if !need(16) {
		return nil, errors.New("wal: truncated reshard payload")
	}
	op.MapEpoch = binary.BigEndian.Uint64(payload[off:])
	off += 8
	op.ParentEpoch = binary.BigEndian.Uint64(payload[off:])
	off += 8
	if off != len(payload) {
		return nil, errors.New("wal: trailing bytes in reshard payload")
	}
	return op, nil
}

// PartitionCheckpoint is the typed payload of a RecCheckpoint record in
// a table's meta log: the full partition state as of the checkpoint, so
// recovery can seat the partition directly instead of replaying every
// RecReshard of a long split/merge history. Transitions recorded before
// the checkpoint are already reflected in it.
type PartitionCheckpoint struct {
	// MapEpoch is the signed map epoch the checkpointed partition was
	// published under.
	MapEpoch uint64
	// NextShardID is the allocator watermark: stable IDs below it are
	// burned and must never be reused, even for retired shards.
	NextShardID uint64
	// ShardIDs are the live shards' stable identities, in partition
	// order; Boundaries are the len(ShardIDs)-1 interior split keys.
	ShardIDs   []uint64
	Boundaries []schema.Datum
}

// EncodePartitionCheckpoint serializes a checkpoint payload.
func EncodePartitionCheckpoint(cp *PartitionCheckpoint) []byte {
	var out []byte
	var u4 [4]byte
	var u8 [8]byte
	binary.BigEndian.PutUint64(u8[:], cp.MapEpoch)
	out = append(out, u8[:]...)
	binary.BigEndian.PutUint64(u8[:], cp.NextShardID)
	out = append(out, u8[:]...)
	binary.BigEndian.PutUint32(u4[:], uint32(len(cp.ShardIDs)))
	out = append(out, u4[:]...)
	for _, id := range cp.ShardIDs {
		binary.BigEndian.PutUint64(u8[:], id)
		out = append(out, u8[:]...)
	}
	binary.BigEndian.PutUint32(u4[:], uint32(len(cp.Boundaries)))
	out = append(out, u4[:]...)
	for i := range cp.Boundaries {
		out = cp.Boundaries[i].Encode(out)
	}
	return out
}

// DecodePartitionCheckpoint parses a payload written by
// EncodePartitionCheckpoint.
func DecodePartitionCheckpoint(payload []byte) (*PartitionCheckpoint, error) {
	cp := &PartitionCheckpoint{}
	off := 0
	need := func(n int) bool { return off+n <= len(payload) }
	if !need(16) {
		return nil, errors.New("wal: truncated partition checkpoint")
	}
	cp.MapEpoch = binary.BigEndian.Uint64(payload[off:])
	off += 8
	cp.NextShardID = binary.BigEndian.Uint64(payload[off:])
	off += 8
	if !need(4) {
		return nil, errors.New("wal: truncated partition checkpoint")
	}
	n := int(binary.BigEndian.Uint32(payload[off:]))
	off += 4
	if n < 0 || n > len(payload) {
		return nil, fmt.Errorf("wal: implausible checkpoint shard count %d", n)
	}
	for i := 0; i < n; i++ {
		if !need(8) {
			return nil, errors.New("wal: truncated partition checkpoint")
		}
		cp.ShardIDs = append(cp.ShardIDs, binary.BigEndian.Uint64(payload[off:]))
		off += 8
	}
	if !need(4) {
		return nil, errors.New("wal: truncated partition checkpoint")
	}
	nb := int(binary.BigEndian.Uint32(payload[off:]))
	off += 4
	if nb < 0 || nb > len(payload) {
		return nil, fmt.Errorf("wal: implausible checkpoint boundary count %d", nb)
	}
	for i := 0; i < nb; i++ {
		d, used, err := schema.DecodeDatum(payload[off:])
		if err != nil {
			return nil, fmt.Errorf("wal: checkpoint boundary %d: %w", i, err)
		}
		off += used
		cp.Boundaries = append(cp.Boundaries, d)
	}
	if off != len(payload) {
		return nil, errors.New("wal: trailing bytes in partition checkpoint")
	}
	return cp, nil
}

// LastCheckpoint scans a meta log for its most recent partition
// checkpoint and returns it decoded, or nil if the log has none.
// Replay/ReplayOps skip everything at or before this record, so the
// returned state is exactly what a replayer must seed itself with.
func LastCheckpoint(path string) (*PartitionCheckpoint, error) {
	var last []byte
	if err := ReplayAll(path, func(r Record) error {
		if r.Type == RecCheckpoint && len(r.Payload) > 0 {
			last = append(last[:0], r.Payload...)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if last == nil {
		return nil, nil
	}
	return DecodePartitionCheckpoint(last)
}
