package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 20; i++ {
		typ := RecInsert
		if i%3 == 0 {
			typ = RecDelete
		}
		payload := []byte(fmt.Sprintf("payload-%d", i))
		lsn, err := l.Append(typ, payload)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
		want = append(want, Record{LSN: lsn, Type: typ, Payload: payload})
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got []Record
	if err := ReplayAll(path, func(r Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].LSN != want[i].LSN || got[i].Type != want[i].Type || !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestReplayFromCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.wal")
	l, _ := Create(path)
	mustAppend := func(typ RecordType, p string) {
		if _, err := l.Append(typ, []byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	mustAppend(RecInsert, "old-1")
	mustAppend(RecInsert, "old-2")
	mustAppend(RecCheckpoint, "")
	mustAppend(RecInsert, "new-1")
	mustAppend(RecDelete, "new-2")
	l.Close()

	var got []string
	if err := Replay(path, func(r Record) error {
		got = append(got, string(r.Payload))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "new-1" || got[1] != "new-2" {
		t.Fatalf("post-checkpoint replay = %v", got)
	}
}

func TestOpenResumesLSN(t *testing.T) {
	path := filepath.Join(t.TempDir(), "resume.wal")
	l, _ := Create(path)
	for i := 0; i < 5; i++ {
		if _, err := l.Append(RecInsert, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NextLSN() != 6 {
		t.Fatalf("NextLSN = %d, want 6", re.NextLSN())
	}
	lsn, err := re.Append(RecDelete, []byte("after reopen"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 6 {
		t.Fatalf("appended lsn = %d", lsn)
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	l, _ := Create(path)
	for i := 0; i < 3; i++ {
		if _, err := l.Append(RecInsert, []byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Corrupt the last record's payload byte.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var got []string
	if err := ReplayAll(path, func(r Record) error {
		got = append(got, string(r.Payload))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("replayed %d records from torn log, want 2", len(got))
	}
	// Open must truncate the tail and continue from LSN 3.
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NextLSN() != 3 {
		t.Fatalf("NextLSN after torn tail = %d, want 3", re.NextLSN())
	}
	if _, err := re.Append(RecInsert, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	var all []string
	re.Close()
	if err := ReplayAll(path, func(r Record) error {
		all = append(all, string(r.Payload))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 || all[2] != "fresh" {
		t.Fatalf("log after repair = %v", all)
	}
}

func TestTruncatedHeaderTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "short.wal")
	l, _ := Create(path)
	if _, err := l.Append(RecInsert, []byte("full")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Append garbage shorter than a header.
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	f.Write([]byte{1, 2, 3})
	f.Close()

	count := 0
	if err := ReplayAll(path, func(Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("replayed %d, want 1", count)
	}
}

func TestClosedLogRejectsAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "closed.wal")
	l, _ := Create(path)
	l.Close()
	if _, err := l.Append(RecInsert, nil); err == nil {
		t.Fatal("append on closed log succeeded")
	}
	if err := l.Sync(); err == nil {
		t.Fatal("sync on closed log succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestReplayErrorPropagates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "err.wal")
	l, _ := Create(path)
	l.Append(RecInsert, []byte("x"))
	l.Close()
	wantErr := fmt.Errorf("boom")
	err := ReplayAll(path, func(Record) error { return wantErr })
	if err == nil {
		t.Fatal("replay error swallowed")
	}
}

func TestRecordTypeString(t *testing.T) {
	if RecInsert.String() != "insert" || RecDelete.String() != "delete" || RecCheckpoint.String() != "checkpoint" {
		t.Fatal("RecordType rendering")
	}
	if RecordType(99).String() == "" {
		t.Fatal("unknown type should render")
	}
}
