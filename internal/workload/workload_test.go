package workload

import (
	"testing"

	"edgeauth/internal/schema"
)

func TestSchemaShape(t *testing.T) {
	spec := DefaultSpec(100)
	sch, err := spec.Schema()
	if err != nil {
		t.Fatal(err)
	}
	if len(sch.Columns) != 10 {
		t.Fatalf("columns = %d, want 10", len(sch.Columns))
	}
	if sch.Columns[0].Name != "id" || sch.Columns[0].Type != schema.TypeInt64 {
		t.Fatalf("key column = %+v", sch.Columns[0])
	}
	if sch.Columns[1].Name != "cat" {
		t.Fatalf("second column = %q, want cat", sch.Columns[1].Name)
	}
	spec.Categories = 0
	sch2, err := spec.Schema()
	if err != nil {
		t.Fatal(err)
	}
	if sch2.ColumnIndex("cat") != -1 {
		t.Fatal("cat column present with Categories=0")
	}
	spec.Cols = 0
	if _, err := spec.Schema(); err == nil {
		t.Fatal("zero columns accepted")
	}
}

func TestTuplesDeterministicAndSorted(t *testing.T) {
	spec := DefaultSpec(200)
	t1, err := spec.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := spec.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	if len(t1) != 200 {
		t.Fatalf("generated %d tuples", len(t1))
	}
	for i := range t1 {
		if !t1[i].Values[0].Equal(schema.Int64(int64(i))) {
			t.Fatalf("row %d key = %v", i, t1[i].Values[0])
		}
		for c := range t1[i].Values {
			if !t1[i].Values[c].Equal(t2[i].Values[c]) {
				t.Fatalf("generation not deterministic at row %d col %d", i, c)
			}
		}
	}
	// Payload sizes honor AttrSize.
	if got := len(t1[0].Values[2].S); got != spec.AttrSize {
		t.Fatalf("payload size = %d, want %d", got, spec.AttrSize)
	}
}

func TestCategoriesBounded(t *testing.T) {
	spec := DefaultSpec(500)
	tuples, err := spec.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, tp := range tuples {
		seen[tp.Values[1].S] = true
	}
	if len(seen) > spec.Categories {
		t.Fatalf("%d distinct categories, want <= %d", len(seen), spec.Categories)
	}
	if len(seen) < 2 {
		t.Fatal("degenerate category distribution")
	}
}

func TestRangeForSelectivity(t *testing.T) {
	lo, hi, qr := RangeForSelectivity(1000, 10, 1)
	if qr != 100 {
		t.Fatalf("qr = %d, want 100", qr)
	}
	if hi-lo+1 != int64(qr) {
		t.Fatalf("range [%d,%d] does not cover %d keys", lo, hi, qr)
	}
	if lo < 0 || hi >= 1000 {
		t.Fatalf("range [%d,%d] out of table", lo, hi)
	}
	// Determinism per seed; variety across seeds.
	lo2, _, _ := RangeForSelectivity(1000, 10, 1)
	if lo != lo2 {
		t.Fatal("same seed gave different ranges")
	}
	// 100% covers everything.
	lo3, hi3, qr3 := RangeForSelectivity(1000, 100, 9)
	if lo3 != 0 || hi3 != 999 || qr3 != 1000 {
		t.Fatalf("full range = [%d,%d] qr=%d", lo3, hi3, qr3)
	}
	// Empty and clamped cases.
	if _, _, qr := RangeForSelectivity(1000, 0, 1); qr != 0 {
		t.Fatal("zero selectivity should be empty")
	}
	if _, _, qr := RangeForSelectivity(1000, 300, 1); qr != 1000 {
		t.Fatal("selectivity must clamp at 100%")
	}
}

func TestSelectivitiesSweep(t *testing.T) {
	s := Selectivities()
	if s[0] != 1 || s[len(s)-1] != 100 || len(s) != 11 {
		t.Fatalf("sweep = %v", s)
	}
}

func TestProjectFirstN(t *testing.T) {
	sch, _ := DefaultSpec(10).Schema()
	cols := ProjectFirstN(sch, 3)
	if len(cols) != 3 || cols[0] != "id" {
		t.Fatalf("ProjectFirstN = %v", cols)
	}
	all := ProjectFirstN(sch, 99)
	if len(all) != len(sch.Columns) {
		t.Fatalf("over-request returned %d cols", len(all))
	}
}

func TestJoinSpec(t *testing.T) {
	j := DefaultJoinSpec(50, 200)
	if j.Users.Table != "users" {
		t.Fatalf("users table = %q", j.Users.Table)
	}
	orders := j.OrderTuples()
	if len(orders) != 200 {
		t.Fatalf("orders = %d", len(orders))
	}
	osch := j.OrdersSchema()
	if err := osch.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, o := range orders {
		uid := o.Values[1].I
		if uid < 0 || uid >= 50 {
			t.Fatalf("order %d references user %d out of range", i, uid)
		}
	}
}
