// Package workload generates the deterministic synthetic tables and query
// mixes used by the experiments. The default table shape follows the
// paper's §4.2 settings: tuples of N_C = 10 attributes averaging 20 bytes
// each (200-byte tuples), keyed by a sequential int64 primary key, with
// range queries sized by a selectivity factor Q_R / N_R.
package workload

import (
	"fmt"
	"math/rand"

	"edgeauth/internal/schema"
)

// TableSpec describes a synthetic table.
type TableSpec struct {
	// DB and Table name the relation.
	DB, Table string
	// Rows is N_R.
	Rows int
	// Cols is N_C, including the key column.
	Cols int
	// AttrSize is the payload size of each non-key attribute in bytes.
	AttrSize int
	// Categories controls the cardinality of the "cat" column used by
	// non-key filter queries. Zero disables the category column.
	Categories int
	// Seed makes generation reproducible.
	Seed int64
}

// DefaultSpec mirrors the paper's evaluation table at a configurable row
// count.
func DefaultSpec(rows int) TableSpec {
	return TableSpec{
		DB:         "edgedb",
		Table:      "items",
		Rows:       rows,
		Cols:       10,
		AttrSize:   20,
		Categories: 20,
		Seed:       42,
	}
}

// Schema builds the schema for the spec: column 0 is the int64 key "id";
// column 1 is the filterable "cat" column when Categories > 0; remaining
// columns are fixed-size string payloads "a2", "a3", ….
func (s TableSpec) Schema() (*schema.Schema, error) {
	if s.Cols < 1 {
		return nil, fmt.Errorf("workload: need at least 1 column, got %d", s.Cols)
	}
	sch := &schema.Schema{DB: s.DB, Table: s.Table, Key: 0}
	sch.Columns = append(sch.Columns, schema.Column{Name: "id", Type: schema.TypeInt64})
	for i := 1; i < s.Cols; i++ {
		if i == 1 && s.Categories > 0 {
			sch.Columns = append(sch.Columns, schema.Column{Name: "cat", Type: schema.TypeString})
			continue
		}
		sch.Columns = append(sch.Columns, schema.Column{Name: fmt.Sprintf("a%d", i), Type: schema.TypeString})
	}
	if err := sch.Validate(); err != nil {
		return nil, err
	}
	return sch, nil
}

// Tuples generates the table content in key order.
func (s TableSpec) Tuples() ([]schema.Tuple, error) {
	sch, err := s.Schema()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	out := make([]schema.Tuple, s.Rows)
	for r := 0; r < s.Rows; r++ {
		vals := make([]schema.Datum, len(sch.Columns))
		vals[0] = schema.Int64(int64(r))
		for c := 1; c < len(sch.Columns); c++ {
			if sch.Columns[c].Name == "cat" {
				vals[c] = schema.Str(CategoryName(rng.Intn(s.Categories)))
				continue
			}
			vals[c] = schema.Str(payload(rng, s.AttrSize))
		}
		out[r] = schema.Tuple{Values: vals}
	}
	return out, nil
}

// CategoryName renders category i's value ("cat-07" style, fixed width).
func CategoryName(i int) string { return fmt.Sprintf("cat-%02d", i) }

// payload builds a printable string of exactly n bytes.
func payload(rng *rand.Rand, n int) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(b)
}

// ZipfBuckets returns n bucket indexes drawn zipfian over [0, buckets)
// — the skewed ingest/query distribution for hot-shard experiments
// (most draws land in bucket 0). s is the zipf exponent (> 1; larger
// is more skewed). Deterministic for a given seed.
func ZipfBuckets(n, buckets int, s float64, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(buckets-1))
	out := make([]int, n)
	for i := range out {
		out[i] = int(z.Uint64())
	}
	return out
}

// RangeForSelectivity returns a key range [lo, hi] covering pct percent of
// a table with rows sequential int64 keys, starting at a deterministic
// offset derived from seed.
func RangeForSelectivity(rows int, pct float64, seed int64) (lo, hi int64, qr int) {
	if pct <= 0 || rows == 0 {
		return 0, -1, 0 // empty range
	}
	if pct > 100 {
		pct = 100
	}
	qr = int(float64(rows)*pct/100 + 0.5)
	if qr < 1 {
		qr = 1
	}
	if qr > rows {
		qr = rows
	}
	maxStart := rows - qr
	start := 0
	if maxStart > 0 {
		start = int(rand.New(rand.NewSource(seed)).Int63n(int64(maxStart + 1)))
	}
	return int64(start), int64(start + qr - 1), qr
}

// Selectivities is the sweep used by Figures 10 and 12.
func Selectivities() []float64 {
	out := []float64{1}
	for s := 10.0; s <= 100; s += 10 {
		out = append(out, s)
	}
	return out
}

// ProjectFirstN returns the first n column names of the schema — the
// paper's assumption that the Q_C returned attributes are the first ones.
func ProjectFirstN(sch *schema.Schema, n int) []string {
	if n >= len(sch.Columns) {
		n = len(sch.Columns)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = sch.Columns[i].Name
	}
	return out
}

// JoinSpec describes the two-table equijoin workload used by the
// materialized-view experiments: an "orders" table referencing "users" by
// a foreign key.
type JoinSpec struct {
	Users  TableSpec
	Orders int // order rows
	Seed   int64
}

// DefaultJoinSpec sizes a small join workload.
func DefaultJoinSpec(users, orders int) JoinSpec {
	u := DefaultSpec(users)
	u.Table = "users"
	u.Cols = 4
	return JoinSpec{Users: u, Orders: orders, Seed: 77}
}

// OrdersSchema is the orders side of the join.
func (j JoinSpec) OrdersSchema() *schema.Schema {
	return &schema.Schema{
		DB:    j.Users.DB,
		Table: "orders",
		Columns: []schema.Column{
			{Name: "oid", Type: schema.TypeInt64},
			{Name: "user_id", Type: schema.TypeInt64},
			{Name: "total", Type: schema.TypeFloat64},
		},
		Key: 0,
	}
}

// OrderTuples generates the orders table; user_id references [0, users).
func (j JoinSpec) OrderTuples() []schema.Tuple {
	rng := rand.New(rand.NewSource(j.Seed))
	out := make([]schema.Tuple, j.Orders)
	for i := 0; i < j.Orders; i++ {
		out[i] = schema.NewTuple(
			schema.Int64(int64(i)),
			schema.Int64(int64(rng.Intn(j.Users.Rows))),
			schema.Float64(float64(rng.Intn(100000))/100),
		)
	}
	return out
}
