package peer

import (
	"bytes"
	"testing"
	"time"

	"edgeauth/internal/rpc"
)

func TestCachePutGet(t *testing.T) {
	c := NewCache(2)

	if _, _, ok := c.Get("t#0", 1, 0); ok {
		t.Fatal("empty cache returned a body")
	}
	c.Put("t#0", 1, 0, 2, []byte("a"))
	body, to, ok := c.Get("t#0", 1, 0)
	if !ok || to != 2 || !bytes.Equal(body, []byte("a")) {
		t.Fatalf("Get = %q v%d %v", body, to, ok)
	}

	// Same (epoch, from) replaces in place — a later, wider delta from
	// the same anchor supersedes the narrow one.
	c.Put("t#0", 1, 0, 3, []byte("b"))
	if body, to, _ := c.Get("t#0", 1, 0); to != 3 || !bytes.Equal(body, []byte("b")) {
		t.Fatalf("replace: got %q v%d", body, to)
	}

	// Epoch is part of the key: an old-incarnation body never answers a
	// new-incarnation request.
	if _, _, ok := c.Get("t#0", 2, 0); ok {
		t.Fatal("cross-epoch lookup hit")
	}

	// Noop windows are refused.
	c.Put("t#0", 1, 5, 5, []byte("x"))
	if _, _, ok := c.Get("t#0", 1, 5); ok {
		t.Fatal("noop delta was cached")
	}

	// FIFO eviction beyond perRef (2): the oldest anchor falls out.
	c.Put("t#0", 1, 3, 4, []byte("c"))
	c.Put("t#0", 1, 4, 5, []byte("d"))
	if _, _, ok := c.Get("t#0", 1, 0); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, _, ok := c.Get("t#0", 1, 4); !ok {
		t.Fatal("newest entry evicted")
	}

	c.Drop("t#0")
	if _, _, ok := c.Get("t#0", 1, 4); ok {
		t.Fatal("Drop left entries behind")
	}

	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("stats = %+v, want both hits and misses", st)
	}
}

func TestSourceBackoff(t *testing.T) {
	src := NewSource("127.0.0.1:1", rpc.Options{})
	defer src.Close()
	now := time.Unix(1000, 0)

	if !src.Available(now) {
		t.Fatal("fresh source unavailable")
	}
	src.ReportFailure(now)
	if src.Available(now) {
		t.Fatal("failed source still available")
	}
	// First failure backs off baseBackoff; past the window it is retried.
	if !src.Available(now.Add(baseBackoff)) {
		t.Fatal("source not retried after backoff window")
	}
	// Consecutive failures double the window.
	src.ReportFailure(now)
	if src.Available(now.Add(baseBackoff)) {
		t.Fatal("second failure did not extend the backoff")
	}
	if !src.Available(now.Add(2 * baseBackoff)) {
		t.Fatal("doubled window never expires")
	}
	// The window is capped.
	for i := 0; i < 40; i++ {
		src.ReportFailure(now)
	}
	if !src.Available(now.Add(maxBackoff)) {
		t.Fatal("backoff exceeded maxBackoff")
	}
	// One success heals completely.
	src.ReportSuccess(128)
	if !src.Available(now) {
		t.Fatal("healed source unavailable")
	}

	st := src.Stats()
	if st.Addr != "127.0.0.1:1" || st.PayloadsPulled != 1 || st.BytesPulled != 128 || st.Failures != 42 || st.ConsecutiveFail != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSetOrderAndClock(t *testing.T) {
	set := NewSet([]string{"a:1", "b:2", "c:3"}, rpc.Options{})
	defer set.Close()
	now := time.Unix(2000, 0)
	set.SetClock(func() time.Time { return now })

	avail := set.Available()
	if len(avail) != 3 || avail[0].Addr() != "a:1" || avail[2].Addr() != "c:3" {
		t.Fatalf("available order = %v", addrs(avail))
	}

	// A failed source drops out of the walk but stays in Stats.
	set.Fail(avail[1])
	if got := addrs(set.Available()); len(got) != 2 || got[0] != "a:1" || got[1] != "c:3" {
		t.Fatalf("after failure: %v", got)
	}
	if st := set.Stats(); len(st) != 3 || st[1].ConsecutiveFail != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// Advancing the clock past the backoff readmits it, in order.
	now = now.Add(baseBackoff)
	if got := addrs(set.Available()); len(got) != 3 || got[1] != "b:2" {
		t.Fatalf("after backoff expiry: %v", got)
	}
}

func TestNilSet(t *testing.T) {
	var set *Set
	if set.Len() != 0 || set.Available() != nil || set.Stats() != nil || set.Close() != nil {
		t.Fatal("nil Set is not inert")
	}
}

func addrs(srcs []*Source) []string {
	out := make([]string, len(srcs))
	for i, s := range srcs {
		out[i] = s.Addr()
	}
	return out
}
