// Package peer is the edge-to-edge distribution tier: the pieces an
// edge needs to pull its refresh traffic from other edges instead of
// the central server, and to relay that traffic onward.
//
// The tier adds no trust. Every payload an edge will install is
// central-signed — deltas are whole-body signed, snapshots anchor to
// the root digest the central-signed shard map pins — so WHO carried
// the bytes is irrelevant to integrity: a peer is just a cache. The
// trust anchors (the signed shard map and the central public key) are
// always fetched from the central directly, because only the central
// can vouch for freshness; peers carry the bulk. That split is the CDN
// economics: central egress becomes O(small maps × edges + bulk ×
// tier-1 peers) instead of O(bulk × edges).
//
// A Source is one configured upstream with health scoring: consecutive
// failures back it off exponentially so a dead or stale peer is skipped
// (not re-dialed) on every refresh tick, and one success heals it. A
// Set is the ordered upstream list the refresh loop walks before
// falling back to the central. A Cache holds the raw signed delta
// bodies an edge pulled and verified, so it can relay them verbatim to
// downstream edges — re-encoding would break the whole-body signature,
// relaying bytes preserves it.
package peer

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"edgeauth/internal/rpc"
)

// Backoff bounds for an unhealthy source: the first failure waits
// baseBackoff before the source is retried, doubling per consecutive
// failure up to maxBackoff.
const (
	baseBackoff = 500 * time.Millisecond
	maxBackoff  = 30 * time.Second
)

// Source is one upstream peer edge. It owns the pipelined connection
// and the health state deciding whether the refresh loop should try it.
type Source struct {
	addr string
	conn *rpc.Conn

	mu      sync.Mutex
	fails   int       // consecutive failures
	retryAt time.Time // next time the source may be tried

	// Counters for the per-source expvar surface.
	payloads atomic.Uint64 // payloads successfully pulled from this source
	bytes    atomic.Uint64 // payload bytes pulled from this source
	failures atomic.Uint64 // lifetime failures (transport, stale, reject)
}

// NewSource builds a source dialing addr lazily.
func NewSource(addr string, opts rpc.Options) *Source {
	return &Source{addr: addr, conn: rpc.New(addr, opts)}
}

// Addr reports the upstream's address.
func (s *Source) Addr() string { return s.addr }

// Conn returns the pipelined connection to the upstream.
func (s *Source) Conn() *rpc.Conn { return s.conn }

// Available reports whether the source should be tried now: healthy, or
// past its backoff window.
func (s *Source) Available(now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fails == 0 || !now.Before(s.retryAt)
}

// ReportSuccess records a verified payload pulled from this source and
// heals its health score.
func (s *Source) ReportSuccess(payloadBytes int) {
	s.payloads.Add(1)
	s.bytes.Add(uint64(payloadBytes))
	s.mu.Lock()
	s.fails = 0
	s.mu.Unlock()
}

// ReportFailure records a failed attempt (unreachable, stale, or a
// payload that did not verify) and extends the backoff window.
func (s *Source) ReportFailure(now time.Time) {
	s.failures.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fails++
	backoff := baseBackoff << (s.fails - 1)
	if s.fails > 6 || backoff > maxBackoff {
		backoff = maxBackoff
	}
	s.retryAt = now.Add(backoff)
}

// Close tears down the upstream connection.
func (s *Source) Close() error { return s.conn.Close() }

// SourceStats is a point-in-time snapshot of one source's counters. The
// JSON field names are the expvar keys.
type SourceStats struct {
	Addr            string `json:"addr"`
	PayloadsPulled  uint64 `json:"payloads_pulled"`
	BytesPulled     uint64 `json:"bytes_pulled"`
	Failures        uint64 `json:"failures"`
	ConsecutiveFail int    `json:"consecutive_failures"`
	// Caps is the capability bit set the peer advertised in its Hello
	// response (wire.CapPeerServe when it is a serving peer).
	Caps uint32 `json:"caps"`
}

// Stats snapshots the source.
func (s *Source) Stats() SourceStats {
	s.mu.Lock()
	fails := s.fails
	s.mu.Unlock()
	return SourceStats{
		Addr:            s.addr,
		PayloadsPulled:  s.payloads.Load(),
		BytesPulled:     s.bytes.Load(),
		Failures:        s.failures.Load(),
		ConsecutiveFail: fails,
		Caps:            s.conn.PeerCaps(),
	}
}

// Set is the ordered upstream list an edge pulls from. Order is the
// configured preference (nearest first); the central server is always
// the implicit last resort and is not a member.
type Set struct {
	sources []*Source
	// now is the clock deciding backoff expiry; injectable for tests.
	now func() time.Time
}

// NewSet builds a set of sources in configured order.
func NewSet(addrs []string, opts rpc.Options) *Set {
	p := &Set{now: time.Now}
	for _, a := range addrs {
		p.sources = append(p.sources, NewSource(a, opts))
	}
	return p
}

// SetClock replaces the backoff clock (tests).
func (p *Set) SetClock(now func() time.Time) { p.now = now }

// Len reports the number of configured sources.
func (p *Set) Len() int {
	if p == nil {
		return 0
	}
	return len(p.sources)
}

// Available returns the sources worth trying now, in configured order.
// Backed-off sources are skipped; a round that exhausts every available
// source falls through to the central.
func (p *Set) Available() []*Source {
	if p == nil {
		return nil
	}
	now := p.now()
	out := make([]*Source, 0, len(p.sources))
	for _, s := range p.sources {
		if s.Available(now) {
			out = append(out, s)
		}
	}
	return out
}

// Fail records a failure on src against the set's clock.
func (p *Set) Fail(src *Source) { src.ReportFailure(p.now()) }

// Stats snapshots every configured source (available or not).
func (p *Set) Stats() []SourceStats {
	if p == nil {
		return nil
	}
	out := make([]SourceStats, len(p.sources))
	for i, s := range p.sources {
		out[i] = s.Stats()
	}
	return out
}

// Close tears down every source connection.
func (p *Set) Close() error {
	if p == nil {
		return nil
	}
	var errs []error
	for _, s := range p.sources {
		if err := s.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
