package peer

import "sync"

// DefaultCachePerRef bounds how many delta bodies the relay cache keeps
// per shard ref. Refreshes are periodic and downstream edges lag by at
// most a few ticks, so a short window covers the steady state; anything
// older is answered with a typed delta-gap error and the downstream
// takes a snapshot or falls back to the central.
const DefaultCachePerRef = 8

// Cache holds raw central-signed delta response bodies, keyed by the
// (ref, epoch, fromVersion) a downstream edge would request. Bodies are
// relayed verbatim: the delta signature covers the encoded bytes, so
// the requester verifies them exactly as if the central had answered.
// Only deltas that moved the puller forward are cached (no noops, no
// snapshot-needed markers) — a relayed delta always makes progress.
type Cache struct {
	mu     sync.Mutex
	perRef int
	refs   map[string][]cacheEntry

	hits, misses uint64
}

// cacheEntry is one cached body. Entries are kept in insertion (FIFO)
// order per ref; lookups scan the handful of live entries.
type cacheEntry struct {
	epoch, from, to uint64
	body            []byte
}

// NewCache builds a relay cache keeping perRef bodies per shard ref
// (DefaultCachePerRef when perRef <= 0).
func NewCache(perRef int) *Cache {
	if perRef <= 0 {
		perRef = DefaultCachePerRef
	}
	return &Cache{perRef: perRef, refs: make(map[string][]cacheEntry)}
}

// Put stores a verified delta body for relay. The caller must only pass
// bodies whose signature it has already verified and applied (from >= to
// would be a noop and is ignored).
func (c *Cache) Put(ref string, epoch, from, to uint64, body []byte) {
	if to <= from {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	entries := c.refs[ref]
	for i, e := range entries {
		if e.epoch == epoch && e.from == from {
			entries[i] = cacheEntry{epoch: epoch, from: from, to: to, body: body}
			return
		}
	}
	entries = append(entries, cacheEntry{epoch: epoch, from: from, to: to, body: body})
	if len(entries) > c.perRef {
		entries = entries[len(entries)-c.perRef:]
	}
	c.refs[ref] = entries
}

// Get looks up a body covering exactly (epoch, fromVersion) for ref,
// returning the body and the version it advances to.
func (c *Cache) Get(ref string, epoch, from uint64) (body []byte, to uint64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.refs[ref] {
		if e.epoch == epoch && e.from == from {
			c.hits++
			return e.body, e.to, true
		}
	}
	c.misses++
	return nil, 0, false
}

// Drop discards every cached body for ref (the replica was reinstalled
// from a snapshot; its old delta chain no longer describes the store).
func (c *Cache) Drop(ref string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.refs, ref)
}

// CacheStats reports lookup traffic. The JSON field names are the
// expvar keys.
type CacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses}
}
