package schema

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func testSchema() *Schema {
	return &Schema{
		DB:    "testdb",
		Table: "orders",
		Columns: []Column{
			{Name: "id", Type: TypeInt64},
			{Name: "amount", Type: TypeFloat64},
			{Name: "customer", Type: TypeString},
			{Name: "blob", Type: TypeBytes},
		},
		Key: 0,
	}
}

func TestSchemaValidate(t *testing.T) {
	if err := testSchema().Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Schema)
	}{
		{"empty db", func(s *Schema) { s.DB = "" }},
		{"empty table", func(s *Schema) { s.Table = "" }},
		{"no columns", func(s *Schema) { s.Columns = nil }},
		{"empty column name", func(s *Schema) { s.Columns[1].Name = "" }},
		{"duplicate column", func(s *Schema) { s.Columns[1].Name = "id" }},
		{"bad type", func(s *Schema) { s.Columns[2].Type = TypeInvalid }},
		{"key out of range", func(s *Schema) { s.Key = 9 }},
		{"negative key", func(s *Schema) { s.Key = -1 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := testSchema()
			c.mutate(s)
			if err := s.Validate(); err == nil {
				t.Fatal("invalid schema accepted")
			}
		})
	}
}

func TestColumnIndex(t *testing.T) {
	s := testSchema()
	if got := s.ColumnIndex("customer"); got != 2 {
		t.Errorf("ColumnIndex(customer) = %d, want 2", got)
	}
	if got := s.ColumnIndex("nope"); got != -1 {
		t.Errorf("ColumnIndex(nope) = %d, want -1", got)
	}
	if s.KeyColumn().Name != "id" {
		t.Errorf("KeyColumn = %q, want id", s.KeyColumn().Name)
	}
}

func TestSchemaProject(t *testing.T) {
	s := testSchema()
	p, idx, err := s.Project([]string{"customer", "id"})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Columns) != 2 || p.Columns[0].Name != "customer" || p.Columns[1].Name != "id" {
		t.Fatalf("projected columns wrong: %+v", p.Columns)
	}
	if p.Key != 1 {
		t.Errorf("projected key index = %d, want 1", p.Key)
	}
	if idx[0] != 2 || idx[1] != 0 {
		t.Errorf("projection index map = %v", idx)
	}

	p2, _, err := s.Project([]string{"amount"})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Key != -1 {
		t.Errorf("keyless projection Key = %d, want -1", p2.Key)
	}
	if _, _, err := s.Project([]string{"ghost"}); err == nil {
		t.Fatal("projection of unknown column accepted")
	}
}

func TestDatumCompare(t *testing.T) {
	cases := []struct {
		a, b Datum
		want int
	}{
		{Int64(1), Int64(2), -1},
		{Int64(2), Int64(2), 0},
		{Int64(3), Int64(2), 1},
		{Int64(-5), Int64(5), -1},
		{Float64(1.5), Float64(2.5), -1},
		{Float64(-0.0), Float64(0.0), 0},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Bytes([]byte{1}), Bytes([]byte{1, 0}), -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched comparison")
		}
	}()
	Int64(1).Compare(Str("1"))
}

func TestKeyEncodingOrderPreservingInt(t *testing.T) {
	f := func(a, b int64) bool {
		ka := Int64(a).KeyBytes()
		kb := Int64(b).KeyBytes()
		cmp := bytes.Compare(ka, kb)
		want := Int64(a).Compare(Int64(b))
		return cmp == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyEncodingOrderPreservingFloat(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ka := Float64(a).KeyBytes()
		kb := Float64(b).KeyBytes()
		cmp := bytes.Compare(ka, kb)
		want := Float64(a).Compare(Float64(b))
		// -0.0 and 0.0 compare equal but encode differently; accept
		// either order for that single pair.
		if a == b {
			return true
		}
		return cmp == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// Spot checks across sign/magnitude boundaries.
	vals := []float64{math.Inf(-1), -1e300, -1, -1e-300, 0, 1e-300, 1, 1e300, math.Inf(1)}
	for i := 0; i < len(vals)-1; i++ {
		ka := Float64(vals[i]).KeyBytes()
		kb := Float64(vals[i+1]).KeyBytes()
		if bytes.Compare(ka, kb) >= 0 {
			t.Errorf("key encoding not increasing between %v and %v", vals[i], vals[i+1])
		}
	}
}

func TestKeyEncodingOrderPreservingString(t *testing.T) {
	f := func(a, b string) bool {
		cmp := bytes.Compare(Str(a).KeyBytes(), Str(b).KeyBytes())
		return cmp == Str(a).Compare(Str(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalTypeTagged(t *testing.T) {
	a := Int64(3).CanonicalBytes()
	b := Float64(3).CanonicalBytes()
	if bytes.Equal(a, b) {
		t.Fatal("int64(3) and float64(3) share a canonical encoding")
	}
	c := Str("abc").CanonicalBytes()
	d := Bytes([]byte("abc")).CanonicalBytes()
	if bytes.Equal(c, d) {
		t.Fatal("string and bytes share a canonical encoding")
	}
}

func TestDatumEncodeDecodeRoundTrip(t *testing.T) {
	datums := []Datum{
		Int64(0), Int64(-1), Int64(math.MaxInt64), Int64(math.MinInt64),
		Float64(0), Float64(-math.Pi), Float64(math.MaxFloat64),
		Str(""), Str("hello"), Str("unicode ✔"),
		Bytes(nil), Bytes([]byte{0, 1, 2, 255}),
	}
	for _, d := range datums {
		enc := d.Encode(nil)
		if len(enc) != d.WireSize() {
			t.Errorf("%v: encoded %d bytes, WireSize says %d", d, len(enc), d.WireSize())
		}
		got, n, err := DecodeDatum(enc)
		if err != nil {
			t.Fatalf("%v: decode: %v", d, err)
		}
		if n != len(enc) {
			t.Errorf("%v: consumed %d of %d bytes", d, n, len(enc))
		}
		if !got.Equal(d) {
			t.Errorf("round trip: got %v, want %v", got, d)
		}
	}
}

func TestDecodeDatumRejectsCorrupt(t *testing.T) {
	cases := map[string][]byte{
		"empty":            {},
		"unknown type":     {0x7F},
		"short int":        {byte(TypeInt64), 1, 2},
		"short header":     {byte(TypeString), 0, 0},
		"short payload":    {byte(TypeString), 0, 0, 0, 5, 'a'},
		"short bytes hdr":  {byte(TypeBytes), 0},
		"invalid type tag": {byte(TypeInvalid)},
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, _, err := DecodeDatum(data); err == nil {
				t.Fatal("corrupt datum accepted")
			}
		})
	}
}

func TestTupleRoundTrip(t *testing.T) {
	tup := NewTuple(Int64(42), Float64(9.75), Str("alice"), Bytes([]byte{9, 9}))
	enc := tup.EncodeBytes()
	if len(enc) != tup.WireSize() {
		t.Errorf("encoded %d bytes, WireSize says %d", len(enc), tup.WireSize())
	}
	got, n, err := DecodeTuple(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Errorf("consumed %d of %d", n, len(enc))
	}
	if len(got.Values) != 4 {
		t.Fatalf("got %d values", len(got.Values))
	}
	for i := range tup.Values {
		if !got.Values[i].Equal(tup.Values[i]) {
			t.Errorf("value %d: got %v, want %v", i, got.Values[i], tup.Values[i])
		}
	}
}

func TestDecodeTupleRejectsCorrupt(t *testing.T) {
	tup := NewTuple(Int64(1), Str("x"))
	enc := tup.EncodeBytes()
	if _, _, err := DecodeTuple(enc[:1]); err == nil {
		t.Fatal("truncated header accepted")
	}
	if _, _, err := DecodeTuple(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestTupleKeyAndClone(t *testing.T) {
	s := testSchema()
	tup := NewTuple(Int64(7), Float64(1), Str("bob"), Bytes([]byte{1, 2}))
	if k := tup.Key(s); !k.Equal(Int64(7)) {
		t.Fatalf("Key = %v, want 7", k)
	}
	c := tup.Clone()
	c.Values[3].B[0] = 99
	if tup.Values[3].B[0] == 99 {
		t.Fatal("Clone shares bytes storage")
	}
}

func TestDatumStringRendering(t *testing.T) {
	if got := Int64(-3).String(); got != "-3" {
		t.Errorf("Int64 render = %q", got)
	}
	if got := Str("a").String(); got != `"a"` {
		t.Errorf("Str render = %q", got)
	}
	if got := Bytes([]byte{0xAB}).String(); got != "0xab" {
		t.Errorf("Bytes render = %q", got)
	}
	if got := (Datum{}).String(); got != "<invalid>" {
		t.Errorf("invalid render = %q", got)
	}
	tup := NewTuple(Int64(1), Str("x"))
	if got := tup.String(); got != `(1, "x")` {
		t.Errorf("tuple render = %q", got)
	}
}

func TestTypeString(t *testing.T) {
	if TypeInt64.String() != "int64" || TypeBytes.String() != "bytes" {
		t.Error("Type.String mismatch")
	}
	if Type(99).String() == "" {
		t.Error("unknown type should render")
	}
}
