// Package schema defines table schemas, typed values (datums) and tuples
// for the authenticated-query system. It provides the canonical byte
// encodings that the rest of the repository depends on:
//
//   - an order-preserving key encoding, so B+-tree byte comparisons agree
//     with typed comparisons;
//   - a canonical attribute-value encoding, the "value" input of the
//     paper's attribute hash h(db|table|attr|key|value);
//   - a self-delimiting tuple wire encoding used by storage and the
//     network protocol.
package schema

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"
)

// Type enumerates the supported column types.
type Type uint8

const (
	TypeInvalid Type = iota
	TypeInt64
	TypeFloat64
	TypeString
	TypeBytes
)

func (t Type) String() string {
	switch t {
	case TypeInt64:
		return "int64"
	case TypeFloat64:
		return "float64"
	case TypeString:
		return "string"
	case TypeBytes:
		return "bytes"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Column describes one attribute of a table.
type Column struct {
	Name string
	Type Type
}

// Schema describes a table: its identity (database and table name, which
// are bound into every attribute digest), its columns, and which column is
// the primary key the VB-tree is built over.
type Schema struct {
	DB      string
	Table   string
	Columns []Column
	// Key is the index into Columns of the primary-key column.
	Key int
}

// Validate checks structural invariants.
func (s *Schema) Validate() error {
	if s.DB == "" || s.Table == "" {
		return errors.New("schema: database and table names must be non-empty")
	}
	if len(s.Columns) == 0 {
		return errors.New("schema: at least one column required")
	}
	seen := make(map[string]bool, len(s.Columns))
	for i, c := range s.Columns {
		if c.Name == "" {
			return fmt.Errorf("schema: column %d has empty name", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("schema: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
		switch c.Type {
		case TypeInt64, TypeFloat64, TypeString, TypeBytes:
		default:
			return fmt.Errorf("schema: column %q has invalid type %v", c.Name, c.Type)
		}
	}
	if s.Key < 0 || s.Key >= len(s.Columns) {
		return fmt.Errorf("schema: key index %d out of range", s.Key)
	}
	return nil
}

// ColumnIndex returns the index of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// KeyColumn returns the primary-key column.
func (s *Schema) KeyColumn() Column { return s.Columns[s.Key] }

// Project returns a new schema restricted to the named columns, in the
// given order. The key column need not be included (the paper's projection
// VOs still verify because filtered attributes travel as signed digests),
// but if it is, the projected schema keeps it as its key; otherwise Key is
// -1 and the projected schema is result-only (not indexable).
func (s *Schema) Project(cols []string) (*Schema, []int, error) {
	idx := make([]int, len(cols))
	out := &Schema{DB: s.DB, Table: s.Table, Key: -1}
	for i, name := range cols {
		j := s.ColumnIndex(name)
		if j < 0 {
			return nil, nil, fmt.Errorf("schema: unknown column %q", name)
		}
		idx[i] = j
		if j == s.Key {
			out.Key = i
		}
		out.Columns = append(out.Columns, s.Columns[j])
	}
	return out, idx, nil
}

// Datum is a typed value. Exactly one of the payload fields is meaningful,
// selected by Type.
type Datum struct {
	Type Type
	I    int64
	F    float64
	S    string
	B    []byte
}

// Int64 constructs an int64 datum.
func Int64(v int64) Datum { return Datum{Type: TypeInt64, I: v} }

// Float64 constructs a float64 datum.
func Float64(v float64) Datum { return Datum{Type: TypeFloat64, F: v} }

// Str constructs a string datum.
func Str(v string) Datum { return Datum{Type: TypeString, S: v} }

// Bytes constructs a bytes datum. The slice is not copied.
func Bytes(v []byte) Datum { return Datum{Type: TypeBytes, B: v} }

// IsZero reports whether d is the invalid zero datum.
func (d Datum) IsZero() bool { return d.Type == TypeInvalid }

// String renders the datum for humans.
func (d Datum) String() string {
	switch d.Type {
	case TypeInt64:
		return strconv.FormatInt(d.I, 10)
	case TypeFloat64:
		return strconv.FormatFloat(d.F, 'g', -1, 64)
	case TypeString:
		return strconv.Quote(d.S)
	case TypeBytes:
		return fmt.Sprintf("0x%x", d.B)
	default:
		return "<invalid>"
	}
}

// Compare orders two datums of the same type: -1, 0 or 1. Comparing
// mismatched types panics — callers validate types at plan time.
func (d Datum) Compare(o Datum) int {
	if d.Type != o.Type {
		panic(fmt.Sprintf("schema: comparing %v with %v", d.Type, o.Type))
	}
	switch d.Type {
	case TypeInt64:
		switch {
		case d.I < o.I:
			return -1
		case d.I > o.I:
			return 1
		}
		return 0
	case TypeFloat64:
		switch {
		case d.F < o.F:
			return -1
		case d.F > o.F:
			return 1
		}
		return 0
	case TypeString:
		switch {
		case d.S < o.S:
			return -1
		case d.S > o.S:
			return 1
		}
		return 0
	case TypeBytes:
		return bytes.Compare(d.B, o.B)
	default:
		panic("schema: comparing invalid datums")
	}
}

// Equal reports whether two datums have identical type and value.
func (d Datum) Equal(o Datum) bool {
	return d.Type == o.Type && d.Compare(o) == 0
}

// EncodeKey appends an order-preserving encoding of d: bytewise comparison
// of encodings agrees with Compare. Int64 uses offset-binary; float64 uses
// the standard sign-flip transform; strings and bytes are raw (keys are
// single-column, so no terminator is needed).
func (d Datum) EncodeKey(dst []byte) []byte {
	switch d.Type {
	case TypeInt64:
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(d.I)^(1<<63))
		return append(dst, b[:]...)
	case TypeFloat64:
		bits := math.Float64bits(d.F)
		if bits&(1<<63) != 0 {
			bits = ^bits
		} else {
			bits |= 1 << 63
		}
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], bits)
		return append(dst, b[:]...)
	case TypeString:
		return append(dst, d.S...)
	case TypeBytes:
		return append(dst, d.B...)
	default:
		panic("schema: encoding invalid datum as key")
	}
}

// KeyBytes returns EncodeKey into a fresh slice.
func (d Datum) KeyBytes() []byte { return d.EncodeKey(nil) }

// Canonical appends the canonical attribute-value encoding of d — the byte
// string that is hashed as the "value" field of the paper's formula (1).
// It is type-tagged so that, e.g., int64(3) and float64(3) hash differently.
func (d Datum) Canonical(dst []byte) []byte {
	dst = append(dst, byte(d.Type))
	switch d.Type {
	case TypeInt64:
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(d.I))
		return append(dst, b[:]...)
	case TypeFloat64:
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], math.Float64bits(d.F))
		return append(dst, b[:]...)
	case TypeString:
		return append(dst, d.S...)
	case TypeBytes:
		return append(dst, d.B...)
	default:
		panic("schema: canonical encoding of invalid datum")
	}
}

// CanonicalBytes returns Canonical into a fresh slice.
func (d Datum) CanonicalBytes() []byte { return d.Canonical(nil) }

// WireSize returns the encoded size of d under Encode.
func (d Datum) WireSize() int {
	switch d.Type {
	case TypeInt64, TypeFloat64:
		return 1 + 8
	case TypeString:
		return 1 + 4 + len(d.S)
	case TypeBytes:
		return 1 + 4 + len(d.B)
	default:
		return 1
	}
}

// Encode appends the self-delimiting wire encoding of d.
func (d Datum) Encode(dst []byte) []byte {
	dst = append(dst, byte(d.Type))
	switch d.Type {
	case TypeInt64:
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(d.I))
		return append(dst, b[:]...)
	case TypeFloat64:
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], math.Float64bits(d.F))
		return append(dst, b[:]...)
	case TypeString:
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], uint32(len(d.S)))
		dst = append(dst, b[:]...)
		return append(dst, d.S...)
	case TypeBytes:
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], uint32(len(d.B)))
		dst = append(dst, b[:]...)
		return append(dst, d.B...)
	default:
		panic("schema: encoding invalid datum")
	}
}

// DecodeDatum parses one datum from data, returning it and the number of
// bytes consumed.
func DecodeDatum(data []byte) (Datum, int, error) {
	if len(data) < 1 {
		return Datum{}, 0, errors.New("schema: empty datum encoding")
	}
	t := Type(data[0])
	switch t {
	case TypeInt64:
		if len(data) < 9 {
			return Datum{}, 0, errors.New("schema: truncated int64 datum")
		}
		return Int64(int64(binary.BigEndian.Uint64(data[1:9]))), 9, nil
	case TypeFloat64:
		if len(data) < 9 {
			return Datum{}, 0, errors.New("schema: truncated float64 datum")
		}
		return Float64(math.Float64frombits(binary.BigEndian.Uint64(data[1:9]))), 9, nil
	case TypeString, TypeBytes:
		if len(data) < 5 {
			return Datum{}, 0, errors.New("schema: truncated datum header")
		}
		n := int(binary.BigEndian.Uint32(data[1:5]))
		if n < 0 || len(data) < 5+n {
			return Datum{}, 0, errors.New("schema: truncated datum payload")
		}
		payload := data[5 : 5+n]
		if t == TypeString {
			return Str(string(payload)), 5 + n, nil
		}
		b := make([]byte, n)
		copy(b, payload)
		return Bytes(b), 5 + n, nil
	default:
		return Datum{}, 0, fmt.Errorf("schema: unknown datum type %d", data[0])
	}
}

// Tuple is one row: len(Values) == len(schema.Columns) for base-table
// tuples, or the projected column count for result tuples.
type Tuple struct {
	Values []Datum
}

// NewTuple builds a tuple from datums.
func NewTuple(vals ...Datum) Tuple { return Tuple{Values: vals} }

// Key returns the primary-key datum under s.
func (t Tuple) Key(s *Schema) Datum { return t.Values[s.Key] }

// Clone deep-copies the tuple (bytes payloads included).
func (t Tuple) Clone() Tuple {
	vals := make([]Datum, len(t.Values))
	copy(vals, t.Values)
	for i := range vals {
		if vals[i].Type == TypeBytes {
			b := make([]byte, len(vals[i].B))
			copy(b, vals[i].B)
			vals[i].B = b
		}
	}
	return Tuple{Values: vals}
}

// WireSize returns the encoded size of the tuple.
func (t Tuple) WireSize() int {
	n := 2
	for _, v := range t.Values {
		n += v.WireSize()
	}
	return n
}

// Encode appends the tuple wire encoding: u16 column count, then datums.
func (t Tuple) Encode(dst []byte) []byte {
	var b [2]byte
	binary.BigEndian.PutUint16(b[:], uint16(len(t.Values)))
	dst = append(dst, b[:]...)
	for _, v := range t.Values {
		dst = v.Encode(dst)
	}
	return dst
}

// EncodeBytes returns Encode into a fresh slice.
func (t Tuple) EncodeBytes() []byte { return t.Encode(make([]byte, 0, t.WireSize())) }

// DecodeTuple parses a tuple, returning it and the bytes consumed.
func DecodeTuple(data []byte) (Tuple, int, error) {
	if len(data) < 2 {
		return Tuple{}, 0, errors.New("schema: truncated tuple header")
	}
	n := int(binary.BigEndian.Uint16(data[0:2]))
	off := 2
	vals := make([]Datum, n)
	for i := 0; i < n; i++ {
		d, used, err := DecodeDatum(data[off:])
		if err != nil {
			return Tuple{}, 0, fmt.Errorf("schema: tuple value %d: %w", i, err)
		}
		vals[i] = d
		off += used
	}
	return Tuple{Values: vals}, off, nil
}

// String renders the tuple for humans.
func (t Tuple) String() string {
	var sb bytes.Buffer
	sb.WriteByte('(')
	for i, v := range t.Values {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.String())
	}
	sb.WriteByte(')')
	return sb.String()
}
