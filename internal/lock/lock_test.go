package lock

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func res(id uint64) Resource { return Resource{Space: "t", ID: id} }

func TestSharedLocksCoexist(t *testing.T) {
	m := NewManager(time.Second)
	t1, t2 := m.Begin(), m.Begin()
	if err := m.Acquire(t1, res(1), Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(t2, res(1), Shared); err != nil {
		t.Fatalf("second shared lock blocked: %v", err)
	}
	h, q := m.Holders(res(1))
	if h != 2 || q != 0 {
		t.Fatalf("holders=%d queued=%d, want 2/0", h, q)
	}
}

func TestExclusiveExcludes(t *testing.T) {
	m := NewManager(50 * time.Millisecond)
	t1, t2 := m.Begin(), m.Begin()
	if err := m.Acquire(t1, res(1), Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(t2, res(1), Shared); !errors.Is(err, ErrTimeout) {
		t.Fatalf("S under X: %v, want timeout", err)
	}
	if err := m.Acquire(t2, res(1), Exclusive); !errors.Is(err, ErrTimeout) {
		t.Fatalf("X under X: %v, want timeout", err)
	}
	// Different resource is free.
	if err := m.Acquire(t2, res(2), Exclusive); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseWakesWaiter(t *testing.T) {
	m := NewManager(2 * time.Second)
	t1, t2 := m.Begin(), m.Begin()
	if err := m.Acquire(t1, res(1), Exclusive); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(t2, res(1), Exclusive) }()
	time.Sleep(20 * time.Millisecond)
	m.Release(t1, res(1))
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("waiter got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter never woke")
	}
}

func TestReentrantAcquire(t *testing.T) {
	m := NewManager(50 * time.Millisecond)
	t1 := m.Begin()
	if err := m.Acquire(t1, res(1), Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(t1, res(1), Shared); err != nil {
		t.Fatalf("re-acquire S: %v", err)
	}
	if err := m.Acquire(t1, res(1), Exclusive); err != nil {
		t.Fatalf("upgrade S->X as sole holder: %v", err)
	}
	// X implies S.
	if err := m.Acquire(t1, res(1), Shared); err != nil {
		t.Fatalf("S while holding X: %v", err)
	}
	h, _ := m.Holders(res(1))
	if h != 1 {
		t.Fatalf("holders = %d, want 1", h)
	}
}

func TestUpgradeBlockedByOtherReader(t *testing.T) {
	m := NewManager(50 * time.Millisecond)
	t1, t2 := m.Begin(), m.Begin()
	if err := m.Acquire(t1, res(1), Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(t2, res(1), Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(t1, res(1), Exclusive); !errors.Is(err, ErrTimeout) {
		t.Fatalf("upgrade with co-reader: %v, want timeout", err)
	}
	// After the co-reader leaves, the upgrade succeeds.
	m.Release(t2, res(1))
	if err := m.Acquire(t1, res(1), Exclusive); err != nil {
		t.Fatalf("upgrade after release: %v", err)
	}
}

func TestUpgradeWakesAfterRelease(t *testing.T) {
	m := NewManager(2 * time.Second)
	t1, t2 := m.Begin(), m.Begin()
	if err := m.Acquire(t1, res(1), Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(t2, res(1), Shared); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(t1, res(1), Exclusive) }()
	time.Sleep(20 * time.Millisecond)
	m.Release(t2, res(1))
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("queued upgrade got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("queued upgrade never woke")
	}
}

func TestReleaseAll(t *testing.T) {
	m := NewManager(time.Second)
	t1, t2 := m.Begin(), m.Begin()
	for i := uint64(1); i <= 5; i++ {
		if err := m.Acquire(t1, res(i), Exclusive); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(m.HeldBy(t1)); got != 5 {
		t.Fatalf("HeldBy = %d, want 5", got)
	}
	m.ReleaseAll(t1)
	if got := len(m.HeldBy(t1)); got != 0 {
		t.Fatalf("HeldBy after ReleaseAll = %d", got)
	}
	for i := uint64(1); i <= 5; i++ {
		if err := m.Acquire(t2, res(i), Exclusive); err != nil {
			t.Fatalf("resource %d still locked: %v", i, err)
		}
	}
}

func TestAcquireManyRollsBackOnFailure(t *testing.T) {
	m := NewManager(50 * time.Millisecond)
	t1, t2 := m.Begin(), m.Begin()
	if err := m.Acquire(t1, res(3), Exclusive); err != nil {
		t.Fatal(err)
	}
	err := m.AcquireMany(t2, []Resource{res(1), res(2), res(3)}, Exclusive)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("AcquireMany: %v, want timeout", err)
	}
	// 1 and 2 must have been released.
	if got := len(m.HeldBy(t2)); got != 0 {
		t.Fatalf("t2 still holds %d locks after failed AcquireMany", got)
	}
	t3 := m.Begin()
	if err := m.AcquireMany(t3, []Resource{res(1), res(2)}, Exclusive); err != nil {
		t.Fatalf("resources leaked by rollback: %v", err)
	}
}

func TestFIFOFairness(t *testing.T) {
	// A queued X waiter must not be starved by later S requests.
	m := NewManager(2 * time.Second)
	t1, t2, t3 := m.Begin(), m.Begin(), m.Begin()
	if err := m.Acquire(t1, res(1), Shared); err != nil {
		t.Fatal(err)
	}
	xDone := make(chan struct{})
	go func() {
		if err := m.Acquire(t2, res(1), Exclusive); err == nil {
			close(xDone)
		}
	}()
	time.Sleep(20 * time.Millisecond) // let the X waiter enqueue
	sDone := make(chan struct{})
	go func() {
		if err := m.Acquire(t3, res(1), Shared); err == nil {
			close(sDone)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-sDone:
		t.Fatal("late S request jumped the queued X waiter")
	default:
	}
	m.Release(t1, res(1))
	<-xDone // X granted first
	select {
	case <-sDone:
		t.Fatal("S granted while X held")
	default:
	}
	m.Release(t2, res(1))
	select {
	case <-sDone:
	case <-time.After(time.Second):
		t.Fatal("S waiter never granted")
	}
}

func TestConcurrentStress(t *testing.T) {
	m := NewManager(5 * time.Second)
	const goroutines = 16
	const iterations = 200
	var counter int64 // protected by resource 42's X lock
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				txn := m.Begin()
				if err := m.Acquire(txn, res(42), Exclusive); err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				v := atomic.LoadInt64(&counter)
				atomic.StoreInt64(&counter, v+1)
				m.ReleaseAll(txn)
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iterations {
		t.Fatalf("counter = %d, want %d (mutual exclusion violated)", counter, goroutines*iterations)
	}
}

func TestDisjointSubtreesProceedConcurrently(t *testing.T) {
	// The paper's §3.4 property: a query whose enveloping subtree does not
	// overlap a delete's path is not blocked.
	m := NewManager(200 * time.Millisecond)
	deleteTxn := m.Begin()
	queryTxn := m.Begin()
	// Delete X-locks pages 10..12 (its subtree).
	if err := m.AcquireMany(deleteTxn, []Resource{res(10), res(11), res(12)}, Exclusive); err != nil {
		t.Fatal(err)
	}
	// Query S-locks pages 20..22 (a disjoint subtree) without blocking.
	start := time.Now()
	if err := m.AcquireMany(queryTxn, []Resource{res(20), res(21), res(22)}, Shared); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("disjoint query was delayed by the delete")
	}
	// An overlapping query blocks until the delete finishes.
	q2 := m.Begin()
	blocked := make(chan error, 1)
	go func() { blocked <- m.Acquire(q2, res(11), Shared) }()
	time.Sleep(20 * time.Millisecond)
	m.ReleaseAll(deleteTxn)
	if err := <-blocked; err != nil {
		t.Fatalf("overlapping query after delete release: %v", err)
	}
}

func TestReleaseIdempotent(t *testing.T) {
	m := NewManager(time.Second)
	t1 := m.Begin()
	m.Release(t1, res(1)) // releasing an unheld lock is a no-op
	m.ReleaseAll(t1)      // likewise
	if err := m.Acquire(t1, res(1), Shared); err != nil {
		t.Fatal(err)
	}
	m.Release(t1, res(1))
	m.Release(t1, res(1))
}

func TestModeAndResourceString(t *testing.T) {
	if Shared.String() != "S" || Exclusive.String() != "X" {
		t.Fatal("Mode.String mismatch")
	}
	if res(7).String() != "t/7" {
		t.Fatalf("Resource.String = %q", res(7).String())
	}
}
