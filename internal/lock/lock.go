// Package lock implements a shared/exclusive lock manager with FIFO
// queuing and timeout-based deadlock recovery. It realizes the paper's
// §3.4 concurrency protocol at the central server:
//
//   - insert transactions X-lock each node digest on their root-to-leaf
//     path as it is modified;
//   - delete transactions X-lock all digests on the paths to the affected
//     leaves before recomputing them;
//   - queries S-lock the digests in their enveloping subtree, so they can
//     proceed concurrently with a delete whenever the subtrees do not
//     overlap — the property the paper highlights over root-anchored
//     schemes.
//
// Resources are (space, id) pairs; the VB-tree uses its table name as the
// space and page ids as resource ids.
package lock

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Mode is the lock mode.
type Mode int

const (
	// Shared permits concurrent readers.
	Shared Mode = iota
	// Exclusive permits a single owner.
	Exclusive
)

func (m Mode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

// TxnID identifies a lock owner (a transaction or query).
type TxnID uint64

// Resource names a lockable object.
type Resource struct {
	Space string
	ID    uint64
}

func (r Resource) String() string { return fmt.Sprintf("%s/%d", r.Space, r.ID) }

// ErrTimeout is returned when a lock cannot be acquired within the
// manager's timeout — the deadlock-recovery mechanism.
var ErrTimeout = errors.New("lock: acquisition timed out (possible deadlock)")

// DefaultTimeout bounds lock waits.
const DefaultTimeout = 2 * time.Second

// Manager is the lock table. The zero value is not usable; call NewManager.
type Manager struct {
	mu      sync.Mutex
	timeout time.Duration
	table   map[Resource]*entry
	held    map[TxnID]map[Resource]Mode // reverse index for ReleaseAll
	nextTxn TxnID
}

type entry struct {
	holders map[TxnID]Mode
	queue   *list.List // of *waiter, FIFO
}

type waiter struct {
	txn   TxnID
	mode  Mode
	ready chan struct{}
}

// NewManager creates a lock manager. timeout <= 0 selects DefaultTimeout.
func NewManager(timeout time.Duration) *Manager {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	return &Manager{
		timeout: timeout,
		table:   make(map[Resource]*entry),
		held:    make(map[TxnID]map[Resource]Mode),
	}
}

// Begin allocates a fresh transaction id.
func (m *Manager) Begin() TxnID {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextTxn++
	return m.nextTxn
}

// compatible reports whether txn may take mode on e right now, considering
// current holders only (queue fairness is handled by the caller).
func (e *entry) compatible(txn TxnID, mode Mode) bool {
	for t, hm := range e.holders {
		if t == txn {
			continue // self; upgrades handled explicitly
		}
		if mode == Exclusive || hm == Exclusive {
			return false
		}
	}
	return true
}

// Acquire takes the lock in the given mode, blocking up to the manager's
// timeout. Re-acquiring a mode already held is a no-op; acquiring
// Exclusive while holding Shared upgrades when possible.
func (m *Manager) Acquire(txn TxnID, res Resource, mode Mode) error {
	m.mu.Lock()
	e, ok := m.table[res]
	if !ok {
		e = &entry{holders: make(map[TxnID]Mode), queue: list.New()}
		m.table[res] = e
	}
	if cur, holding := e.holders[txn]; holding {
		if cur == Exclusive || cur == mode {
			m.mu.Unlock()
			return nil
		}
		// Upgrade S -> X: allowed immediately when txn is the only holder
		// and no exclusive waiter is queued ahead.
		if len(e.holders) == 1 && e.queue.Len() == 0 {
			e.holders[txn] = Exclusive
			m.held[txn][res] = Exclusive
			m.mu.Unlock()
			return nil
		}
		// Otherwise wait like a normal waiter; grant logic knows the
		// holder set still includes us with S.
	} else if e.compatible(txn, mode) && e.queue.Len() == 0 {
		e.holders[txn] = mode
		m.noteHeld(txn, res, mode)
		m.mu.Unlock()
		return nil
	}

	w := &waiter{txn: txn, mode: mode, ready: make(chan struct{})}
	elem := e.queue.PushBack(w)
	m.mu.Unlock()

	timer := time.NewTimer(m.timeout)
	defer timer.Stop()
	select {
	case <-w.ready:
		return nil
	case <-timer.C:
		m.mu.Lock()
		// Either grant raced the timeout, or we must dequeue ourselves.
		select {
		case <-w.ready:
			m.mu.Unlock()
			return nil
		default:
		}
		e.queue.Remove(elem)
		m.grantLocked(res, e)
		m.mu.Unlock()
		return fmt.Errorf("%w: txn %d waiting for %v on %v", ErrTimeout, txn, mode, res)
	}
}

func (m *Manager) noteHeld(txn TxnID, res Resource, mode Mode) {
	hm, ok := m.held[txn]
	if !ok {
		hm = make(map[Resource]Mode)
		m.held[txn] = hm
	}
	hm[res] = mode
}

// Release drops txn's lock on res.
func (m *Manager) Release(txn TxnID, res Resource) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.table[res]
	if !ok {
		return
	}
	if _, holding := e.holders[txn]; !holding {
		return
	}
	delete(e.holders, txn)
	if hm, ok := m.held[txn]; ok {
		delete(hm, res)
		if len(hm) == 0 {
			delete(m.held, txn)
		}
	}
	m.grantLocked(res, e)
}

// ReleaseAll drops every lock held by txn (end of transaction in 2PL).
func (m *Manager) ReleaseAll(txn TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	hm, ok := m.held[txn]
	if !ok {
		return
	}
	delete(m.held, txn)
	for res := range hm {
		if e, ok := m.table[res]; ok {
			delete(e.holders, txn)
			m.grantLocked(res, e)
		}
	}
}

// grantLocked wakes queued waiters in FIFO order while compatible.
func (m *Manager) grantLocked(res Resource, e *entry) {
	for e.queue.Len() > 0 {
		front := e.queue.Front()
		w := front.Value.(*waiter)
		// An upgrader (already holds S) needs to be the only other holder.
		if cur, holding := e.holders[w.txn]; holding && cur == Shared && w.mode == Exclusive {
			if len(e.holders) != 1 {
				return
			}
			e.holders[w.txn] = Exclusive
			m.noteHeld(w.txn, res, Exclusive)
			e.queue.Remove(front)
			close(w.ready)
			continue
		}
		if !e.compatible(w.txn, w.mode) {
			return
		}
		e.holders[w.txn] = w.mode
		m.noteHeld(w.txn, res, w.mode)
		e.queue.Remove(front)
		close(w.ready)
	}
	if len(e.holders) == 0 && e.queue.Len() == 0 {
		delete(m.table, res)
	}
}

// AcquireMany locks all resources in order, releasing everything acquired
// so far if any acquisition fails. Resources should be pre-sorted by the
// caller in a global order to avoid deadlocks between like transactions.
func (m *Manager) AcquireMany(txn TxnID, ress []Resource, mode Mode) error {
	for i, r := range ress {
		if err := m.Acquire(txn, r, mode); err != nil {
			for j := 0; j < i; j++ {
				m.Release(txn, ress[j])
			}
			return err
		}
	}
	return nil
}

// Holders reports the current holder count and queue length for a
// resource, for tests and introspection.
func (m *Manager) Holders(res Resource) (holders, queued int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.table[res]
	if !ok {
		return 0, 0
	}
	return len(e.holders), e.queue.Len()
}

// HeldBy lists the resources currently held by txn.
func (m *Manager) HeldBy(txn TxnID) []Resource {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Resource
	for res := range m.held[txn] {
		out = append(out, res)
	}
	return out
}
