// Package tamper is the adversary toolkit: a catalogue of attacks a
// compromised edge server could mount on query responses. Each attack is
// an edge.TamperFn-compatible mutation; the security test-suite and the
// demo binaries drive them through real deployments to show that client
// verification rejects every one.
//
// The catalogue covers the two integrity properties of the paper — value
// authenticity and freedom from spurious tuples — plus protocol-level
// attacks (digest swapping, VO truncation, stale-key replay).
package tamper

import (
	"errors"
	"fmt"
	"math/rand"

	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/vo"
)

// Attack mutates a query response in place, as a hacked edge would.
type Attack struct {
	// Name identifies the attack in test output and demos.
	Name string
	// Description says what the attack models.
	Description string
	// Apply performs the mutation. It returns an error when the response
	// shape makes the attack inapplicable (e.g. no tuples to modify).
	Apply func(rs *vo.ResultSet, w *vo.VO) error
}

// ErrNotApplicable signals a response the attack cannot target.
var ErrNotApplicable = errors.New("tamper: attack not applicable to this response")

// MutateValue flips a returned attribute value — the classic data-
// tampering attack (e.g. changing a price).
func MutateValue() Attack {
	return Attack{
		Name:        "mutate-value",
		Description: "modify an attribute value in a result tuple",
		Apply: func(rs *vo.ResultSet, w *vo.VO) error {
			if len(rs.Tuples) == 0 || len(rs.Tuples[0].Values) == 0 {
				return ErrNotApplicable
			}
			j := len(rs.Tuples) / 2
			v := &rs.Tuples[j].Values[len(rs.Tuples[j].Values)-1]
			switch v.Type {
			case schema.TypeInt64:
				v.I += 1_000_000
			case schema.TypeFloat64:
				v.F *= -3.5
			case schema.TypeString:
				v.S = v.S + "!"
			case schema.TypeBytes:
				v.B = append(v.B, 0xFF)
			default:
				return ErrNotApplicable
			}
			return nil
		},
	}
}

// DropTuple removes a qualifying tuple from the result.
func DropTuple() Attack {
	return Attack{
		Name:        "drop-tuple",
		Description: "omit a qualifying tuple from the result",
		Apply: func(rs *vo.ResultSet, w *vo.VO) error {
			if len(rs.Tuples) == 0 {
				return ErrNotApplicable
			}
			j := len(rs.Tuples) / 2
			rs.Tuples = append(rs.Tuples[:j], rs.Tuples[j+1:]...)
			rs.Keys = append(rs.Keys[:j], rs.Keys[j+1:]...)
			return nil
		},
	}
}

// InjectTuple fabricates a tuple and appends it to the result.
func InjectTuple() Attack {
	return Attack{
		Name:        "inject-tuple",
		Description: "introduce a spurious tuple into the result",
		Apply: func(rs *vo.ResultSet, w *vo.VO) error {
			if len(rs.Tuples) == 0 {
				return ErrNotApplicable
			}
			fake := rs.Tuples[0].Clone()
			if len(fake.Values) > 0 && fake.Values[0].Type == schema.TypeInt64 {
				fake.Values[0].I += 424242
			}
			key := rs.Keys[0]
			if key.Type == schema.TypeInt64 {
				key.I += 424242
			}
			rs.Tuples = append(rs.Tuples, fake)
			rs.Keys = append(rs.Keys, key)
			return nil
		},
	}
}

// DuplicateTuple replays a legitimate tuple twice.
func DuplicateTuple() Attack {
	return Attack{
		Name:        "duplicate-tuple",
		Description: "return a qualifying tuple twice",
		Apply: func(rs *vo.ResultSet, w *vo.VO) error {
			if len(rs.Tuples) == 0 {
				return ErrNotApplicable
			}
			rs.Tuples = append(rs.Tuples, rs.Tuples[0].Clone())
			rs.Keys = append(rs.Keys, rs.Keys[0])
			return nil
		},
	}
}

// CorruptVODigest flips bits in a D_S signature.
func CorruptVODigest() Attack {
	return Attack{
		Name:        "corrupt-vo-digest",
		Description: "alter a signed digest inside the VO",
		Apply: func(rs *vo.ResultSet, w *vo.VO) error {
			if len(w.DS) == 0 {
				return ErrNotApplicable
			}
			w.DS[0].Sig[len(w.DS[0].Sig)/2] ^= 0x55
			return nil
		},
	}
}

// DropVODigest removes a D_S entry (hiding a filtered branch).
func DropVODigest() Attack {
	return Attack{
		Name:        "drop-vo-digest",
		Description: "omit a D_S digest from the VO",
		Apply: func(rs *vo.ResultSet, w *vo.VO) error {
			if len(w.DS) == 0 {
				return ErrNotApplicable
			}
			w.DS = w.DS[1:]
			return nil
		},
	}
}

// ForgeTopDigest replaces the enveloping-subtree digest with random bytes.
func ForgeTopDigest() Attack {
	return Attack{
		Name:        "forge-top-digest",
		Description: "substitute a forged signature for the subtree digest",
		Apply: func(rs *vo.ResultSet, w *vo.VO) error {
			rng := rand.New(rand.NewSource(1))
			forged := make(sig.Signature, len(w.TopDigest))
			rng.Read(forged)
			w.TopDigest = forged
			return nil
		},
	}
}

// MisliftDS perturbs a D_S lift tag, trying to slot a digest in at the
// wrong tree level.
func MisliftDS() Attack {
	return Attack{
		Name:        "mislift-ds",
		Description: "change the level tag of a D_S digest",
		Apply: func(rs *vo.ResultSet, w *vo.VO) error {
			if len(w.DS) == 0 {
				return ErrNotApplicable
			}
			w.DS[0].Lift++
			return nil
		},
	}
}

// CrossTableReplay relabels the result as coming from another table.
func CrossTableReplay(otherTable string) Attack {
	return Attack{
		Name:        "cross-table-replay",
		Description: "replay a result under a different table's name",
		Apply: func(rs *vo.ResultSet, w *vo.VO) error {
			if rs.Table == otherTable {
				return ErrNotApplicable
			}
			rs.Table = otherTable
			return nil
		},
	}
}

// StaleKeyReplay rewinds the VO's key version, modelling an edge serving
// data signed under a retired key.
func StaleKeyReplay(oldVersion uint32) Attack {
	return Attack{
		Name:        "stale-key-replay",
		Description: "present the VO under an expired signing-key version",
		Apply: func(rs *vo.ResultSet, w *vo.VO) error {
			w.KeyVersion = oldVersion
			return nil
		},
	}
}

// BackdateTimestamp rewinds the VO's timestamp by a year — the §3.4
// attack where a compromised edge masquerades stale data as current by
// stamping the response into a retired key's validity window. A client
// that resolves key validity against the edge-supplied timestamp accepts
// it; one that uses its own clock (with a bounded skew window) rejects
// it.
func BackdateTimestamp() Attack {
	return Attack{
		Name:        "backdate-timestamp",
		Description: "rewind the VO timestamp to masquerade stale data as current",
		Apply: func(rs *vo.ResultSet, w *vo.VO) error {
			w.Timestamp -= 365 * 24 * 3600
			return nil
		},
	}
}

// SwapProjectionDigest moves a D_P digest into D_S, probing set-confusion.
func SwapProjectionDigest() Attack {
	return Attack{
		Name:        "swap-projection-digest",
		Description: "move a filtered-attribute digest into the tuple set",
		Apply: func(rs *vo.ResultSet, w *vo.VO) error {
			if len(w.DP) == 0 {
				return ErrNotApplicable
			}
			moved := w.DP[0]
			w.DP = w.DP[1:]
			w.DS = append(w.DS, vo.Entry{Sig: moved, Lift: w.TopLevel})
			return nil
		},
	}
}

// All returns the full catalogue (attacks needing parameters get
// placeholder arguments suitable for single-table deployments).
func All() []Attack {
	return []Attack{
		MutateValue(),
		DropTuple(),
		InjectTuple(),
		DuplicateTuple(),
		CorruptVODigest(),
		DropVODigest(),
		ForgeTopDigest(),
		MisliftDS(),
		CrossTableReplay("other_table"),
		SwapProjectionDigest(),
		BackdateTimestamp(),
	}
}

// Validate sanity-checks the catalogue.
func Validate(attacks []Attack) error {
	seen := map[string]bool{}
	for _, a := range attacks {
		if a.Name == "" || a.Apply == nil {
			return fmt.Errorf("tamper: malformed attack %+v", a)
		}
		if seen[a.Name] {
			return fmt.Errorf("tamper: duplicate attack %q", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}
