// Package tamper is the adversary toolkit: a catalogue of attacks a
// compromised edge server could mount on query responses. Each attack is
// an edge.TamperFn-compatible mutation; the security test-suite and the
// demo binaries drive them through real deployments to show that client
// verification rejects every one.
//
// The catalogue covers the two integrity properties of the paper — value
// authenticity and freedom from spurious tuples — plus protocol-level
// attacks (digest swapping, VO truncation, stale-key replay).
package tamper

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"

	"edgeauth/internal/digest"
	"edgeauth/internal/schema"
	"edgeauth/internal/shardmap"
	"edgeauth/internal/sig"
	"edgeauth/internal/vo"
)

// Attack mutates a query response in place, as a hacked edge would.
type Attack struct {
	// Name identifies the attack in test output and demos.
	Name string
	// Description says what the attack models.
	Description string
	// Apply performs the mutation. It returns an error when the response
	// shape makes the attack inapplicable (e.g. no tuples to modify).
	Apply func(rs *vo.ResultSet, w *vo.VO) error
}

// ErrNotApplicable signals a response the attack cannot target.
var ErrNotApplicable = errors.New("tamper: attack not applicable to this response")

// MutateValue flips a returned attribute value — the classic data-
// tampering attack (e.g. changing a price).
func MutateValue() Attack {
	return Attack{
		Name:        "mutate-value",
		Description: "modify an attribute value in a result tuple",
		Apply: func(rs *vo.ResultSet, w *vo.VO) error {
			if len(rs.Tuples) == 0 || len(rs.Tuples[0].Values) == 0 {
				return ErrNotApplicable
			}
			j := len(rs.Tuples) / 2
			v := &rs.Tuples[j].Values[len(rs.Tuples[j].Values)-1]
			switch v.Type {
			case schema.TypeInt64:
				v.I += 1_000_000
			case schema.TypeFloat64:
				v.F *= -3.5
			case schema.TypeString:
				v.S = v.S + "!"
			case schema.TypeBytes:
				v.B = append(v.B, 0xFF)
			default:
				return ErrNotApplicable
			}
			return nil
		},
	}
}

// DropTuple removes a qualifying tuple from the result.
func DropTuple() Attack {
	return Attack{
		Name:        "drop-tuple",
		Description: "omit a qualifying tuple from the result",
		Apply: func(rs *vo.ResultSet, w *vo.VO) error {
			if len(rs.Tuples) == 0 {
				return ErrNotApplicable
			}
			j := len(rs.Tuples) / 2
			rs.Tuples = append(rs.Tuples[:j], rs.Tuples[j+1:]...)
			rs.Keys = append(rs.Keys[:j], rs.Keys[j+1:]...)
			return nil
		},
	}
}

// InjectTuple fabricates a tuple and appends it to the result.
func InjectTuple() Attack {
	return Attack{
		Name:        "inject-tuple",
		Description: "introduce a spurious tuple into the result",
		Apply: func(rs *vo.ResultSet, w *vo.VO) error {
			if len(rs.Tuples) == 0 {
				return ErrNotApplicable
			}
			fake := rs.Tuples[0].Clone()
			if len(fake.Values) > 0 && fake.Values[0].Type == schema.TypeInt64 {
				fake.Values[0].I += 424242
			}
			key := rs.Keys[0]
			if key.Type == schema.TypeInt64 {
				key.I += 424242
			}
			rs.Tuples = append(rs.Tuples, fake)
			rs.Keys = append(rs.Keys, key)
			return nil
		},
	}
}

// DuplicateTuple replays a legitimate tuple twice.
func DuplicateTuple() Attack {
	return Attack{
		Name:        "duplicate-tuple",
		Description: "return a qualifying tuple twice",
		Apply: func(rs *vo.ResultSet, w *vo.VO) error {
			if len(rs.Tuples) == 0 {
				return ErrNotApplicable
			}
			rs.Tuples = append(rs.Tuples, rs.Tuples[0].Clone())
			rs.Keys = append(rs.Keys, rs.Keys[0])
			return nil
		},
	}
}

// CorruptVODigest flips bits in a D_S signature.
func CorruptVODigest() Attack {
	return Attack{
		Name:        "corrupt-vo-digest",
		Description: "alter a signed digest inside the VO",
		Apply: func(rs *vo.ResultSet, w *vo.VO) error {
			if len(w.DS) == 0 {
				return ErrNotApplicable
			}
			w.DS[0].Sig[len(w.DS[0].Sig)/2] ^= 0x55
			return nil
		},
	}
}

// DropVODigest removes a D_S entry (hiding a filtered branch).
func DropVODigest() Attack {
	return Attack{
		Name:        "drop-vo-digest",
		Description: "omit a D_S digest from the VO",
		Apply: func(rs *vo.ResultSet, w *vo.VO) error {
			if len(w.DS) == 0 {
				return ErrNotApplicable
			}
			w.DS = w.DS[1:]
			return nil
		},
	}
}

// ForgeTopDigest replaces the enveloping-subtree digest with random bytes.
func ForgeTopDigest() Attack {
	return Attack{
		Name:        "forge-top-digest",
		Description: "substitute a forged signature for the subtree digest",
		Apply: func(rs *vo.ResultSet, w *vo.VO) error {
			rng := rand.New(rand.NewSource(1))
			forged := make(sig.Signature, len(w.TopDigest))
			rng.Read(forged)
			w.TopDigest = forged
			return nil
		},
	}
}

// ForgeInteriorNode attacks the Merkle commitment modes, where interior
// VO digests are raw (unsigned) values: it grafts a fabricated subtree
// digest into D_S and rebalances the top digest so the combiner equation
// still holds — the one forgery hash-only interior commitments would
// admit if the root were not signed. The doctored top digest no longer
// matches the root signature, so a client that verifies RootSig over
// TopDigest rejects the answer; the attack is what makes that signature
// load-bearing.
func ForgeInteriorNode() Attack {
	return Attack{
		Name:        "forge-interior-node",
		Description: "graft an unsigned fabricated subtree digest into a Merkle VO",
		Apply: func(rs *vo.ResultSet, w *vo.VO) error {
			acc := digest.MustNew(digest.DefaultParams())
			if len(w.RootSig) == 0 || len(w.TopDigest) != acc.Len() {
				return ErrNotApplicable // not a Merkle-shaped VO
			}
			forged := acc.HashBytes("tamper:forged-interior", []byte("spurious subtree"))
			lifted, err := acc.Lift(forged, 1)
			if err != nil {
				return err
			}
			top, err := acc.Mul(digest.Value(w.TopDigest), lifted)
			if err != nil {
				return err
			}
			w.DS = append(w.DS, vo.Entry{Sig: sig.Signature(forged), Lift: 1})
			w.TopDigest = sig.Signature(top)
			return nil
		},
	}
}

// CrossSchemeConfusion re-presents the VO under the OTHER commitment
// scheme's shape: a Merkle VO masquerading as a legacy recoverable-
// signature VO (root signature promoted into the top-digest slot), or a
// legacy VO masquerading as a Merkle one (signed top digest demoted to
// the detached slot, a raw fabricated digest in its place). A client
// that derived the expected shape from the VO itself would follow the
// attacker's lead; one that derives it from the trusted registry key's
// scheme rejects the mismatched shape outright.
func CrossSchemeConfusion() Attack {
	return Attack{
		Name:        "cross-scheme-confusion",
		Description: "present the VO under the other commitment scheme's wire shape",
		Apply: func(rs *vo.ResultSet, w *vo.VO) error {
			if len(w.RootSig) > 0 {
				w.TopDigest = w.RootSig.Clone()
				w.RootSig = nil
				return nil
			}
			acc := digest.MustNew(digest.DefaultParams())
			w.RootSig = w.TopDigest.Clone()
			w.TopDigest = sig.Signature(acc.HashBytes("tamper:confused-root", []byte(rs.Table)))
			return nil
		},
	}
}

// MisliftDS perturbs a D_S lift tag, trying to slot a digest in at the
// wrong tree level.
func MisliftDS() Attack {
	return Attack{
		Name:        "mislift-ds",
		Description: "change the level tag of a D_S digest",
		Apply: func(rs *vo.ResultSet, w *vo.VO) error {
			if len(w.DS) == 0 {
				return ErrNotApplicable
			}
			w.DS[0].Lift++
			return nil
		},
	}
}

// CrossTableReplay relabels the result as coming from another table.
func CrossTableReplay(otherTable string) Attack {
	return Attack{
		Name:        "cross-table-replay",
		Description: "replay a result under a different table's name",
		Apply: func(rs *vo.ResultSet, w *vo.VO) error {
			if rs.Table == otherTable {
				return ErrNotApplicable
			}
			rs.Table = otherTable
			return nil
		},
	}
}

// StaleKeyReplay rewinds the VO's key version, modelling an edge serving
// data signed under a retired key.
func StaleKeyReplay(oldVersion uint32) Attack {
	return Attack{
		Name:        "stale-key-replay",
		Description: "present the VO under an expired signing-key version",
		Apply: func(rs *vo.ResultSet, w *vo.VO) error {
			w.KeyVersion = oldVersion
			return nil
		},
	}
}

// BackdateTimestamp rewinds the VO's timestamp by a year — the §3.4
// attack where a compromised edge masquerades stale data as current by
// stamping the response into a retired key's validity window. A client
// that resolves key validity against the edge-supplied timestamp accepts
// it; one that uses its own clock (with a bounded skew window) rejects
// it.
func BackdateTimestamp() Attack {
	return Attack{
		Name:        "backdate-timestamp",
		Description: "rewind the VO timestamp to masquerade stale data as current",
		Apply: func(rs *vo.ResultSet, w *vo.VO) error {
			w.Timestamp -= 365 * 24 * 3600
			return nil
		},
	}
}

// SwapProjectionDigest moves a D_P digest into D_S, probing set-confusion.
func SwapProjectionDigest() Attack {
	return Attack{
		Name:        "swap-projection-digest",
		Description: "move a filtered-attribute digest into the tuple set",
		Apply: func(rs *vo.ResultSet, w *vo.VO) error {
			if len(w.DP) == 0 {
				return ErrNotApplicable
			}
			moved := w.DP[0]
			w.DP = w.DP[1:]
			w.DS = append(w.DS, vo.Entry{Sig: moved, Lift: w.TopLevel})
			return nil
		},
	}
}

// ReplayStaleShard substitutes a previously-captured shard answer for
// the current one — the stale-single-shard attack on a range-partitioned
// table. A compromised edge serves three fresh shards and one frozen
// one, hoping the per-shard VOs (each individually authentic) stitch
// into an accepted cross-shard answer. The replayed VO anchors at the
// shard's OLD root digest, so a client that binds every shard answer to
// the current signed shard map rejects it.
//
// The attack targets responses covering the stale answer's key region
// (so a scatter-gather's other shards pass through untouched).
func ReplayStaleShard(staleRS *vo.ResultSet, staleVO *vo.VO) Attack {
	return Attack{
		Name:        "replay-stale-shard",
		Description: "answer one shard of a range query from a frozen old replica",
		Apply: func(rs *vo.ResultSet, w *vo.VO) error {
			if len(staleRS.Keys) == 0 || len(rs.Keys) == 0 {
				return ErrNotApplicable
			}
			lo, hi := staleRS.Keys[0], staleRS.Keys[len(staleRS.Keys)-1]
			if rs.Keys[0].Compare(hi) > 0 || rs.Keys[len(rs.Keys)-1].Compare(lo) < 0 {
				return ErrNotApplicable // different shard's region
			}
			rs.Columns = append([]string(nil), staleRS.Columns...)
			rs.Keys = append([]schema.Datum(nil), staleRS.Keys...)
			rs.Tuples = nil
			for _, t := range staleRS.Tuples {
				rs.Tuples = append(rs.Tuples, t.Clone())
			}
			w.KeyVersion = staleVO.KeyVersion
			w.TopLevel = staleVO.TopLevel
			w.TopDigest = staleVO.TopDigest.Clone()
			w.DS = nil
			for _, e := range staleVO.DS {
				w.DS = append(w.DS, vo.Entry{Sig: e.Sig.Clone(), Lift: e.Lift})
			}
			w.DP = nil
			for _, s := range staleVO.DP {
				w.DP = append(w.DP, s.Clone())
			}
			// Keep the current timestamp: the attack is the stale CONTENT,
			// not a backdated clock (that one is BackdateTimestamp).
			return nil
		},
	}
}

// MapAttack mutates the shard map a compromised edge serves — hiding,
// re-routing or rewinding shards of a range-partitioned table.
type MapAttack struct {
	Name        string
	Description string
	// Apply mutates the map in place (the edge hook hands it a deep
	// copy). Returning an error marks the attack inapplicable.
	Apply func(sm *shardmap.Signed) error
}

// DropShardFromMap removes the last shard (and its lower boundary) from
// the served map — the drop-a-shard attack: a range query routed by the
// doctored map would silently never ask the hidden shard, truncating
// the answer. The map signature covers the boundary keys and the shard
// list, so the mutation cannot be re-signed and clients reject the map.
func DropShardFromMap() MapAttack {
	return MapAttack{
		Name:        "drop-shard-from-map",
		Description: "hide the last shard of a partitioned table from the served shard map",
		Apply: func(sm *shardmap.Signed) error {
			n := len(sm.Map.Shards)
			if n < 2 {
				return ErrNotApplicable
			}
			sm.Map.Shards = sm.Map.Shards[:n-1]
			sm.Map.Boundaries = sm.Map.Boundaries[:n-2]
			return nil
		},
	}
}

// RewireShardDigests swaps two shards' root digests in the served map —
// an edge trying to answer shard i's range with shard j's (authentic)
// tree. Breaks the map signature just like dropping a shard.
func RewireShardDigests() MapAttack {
	return MapAttack{
		Name:        "rewire-shard-digests",
		Description: "swap two shards' root digests in the served shard map",
		Apply: func(sm *shardmap.Signed) error {
			if len(sm.Map.Shards) < 2 {
				return ErrNotApplicable
			}
			a, b := 0, len(sm.Map.Shards)-1
			sm.Map.Shards[a].RootDigest, sm.Map.Shards[b].RootDigest =
				sm.Map.Shards[b].RootDigest, sm.Map.Shards[a].RootDigest
			return nil
		},
	}
}

// ReplayPreSplitMap captures the first shard map the compromised edge
// serves and replays it verbatim once the central commits a newer
// partition epoch (an online split or merge). The replayed map is
// correctly signed — the signature proves nothing about freshness — so
// the mutation survives signature verification; detection rests on the
// client's partition-epoch ratchet: a map regressing below an epoch the
// client already verified fails closed (verify.ErrMapReplay). Routing
// on the replayed map would otherwise hide the shards a split created.
func ReplayPreSplitMap() MapAttack {
	var first *shardmap.Signed
	return MapAttack{
		Name:        "replay-pre-split-map",
		Description: "replay the correctly signed pre-split shard map after an online split commits",
		Apply: func(sm *shardmap.Signed) error {
			if first == nil {
				first = &shardmap.Signed{Map: sm.Map.Clone(), Sig: sm.Sig}
				return ErrNotApplicable // nothing to replay yet: serve honestly, remember
			}
			if sm.Map.MapEpoch <= first.Map.MapEpoch || sm.Map.Epoch != first.Map.Epoch {
				return ErrNotApplicable // no transition has landed since the capture
			}
			sm.Map = first.Map.Clone()
			sm.Sig = first.Sig
			return nil
		},
	}
}

// HideSplit rewrites the served map to pretend the most recent split
// never happened: the first two shards are folded back into one (the
// left child's root digest claiming the merged range) and the partition
// epoch is rewound. Unlike ReplayPreSplitMap this forges map CONTENT —
// the central never signed this shape — so the map signature itself
// fails and clients reject it as tampered.
func HideSplit() MapAttack {
	return MapAttack{
		Name:        "hide-split",
		Description: "fold a split's children back into one shard in the served map, rewinding the partition epoch",
		Apply: func(sm *shardmap.Signed) error {
			m := sm.Map
			if m.MapEpoch < 2 || len(m.Shards) < 2 {
				return ErrNotApplicable // no transition to hide
			}
			m.Shards = append(m.Shards[:1], m.Shards[2:]...)
			m.Boundaries = m.Boundaries[1:]
			m.MapEpoch--
			if m.ParentEpoch > 0 {
				m.ParentEpoch--
			}
			return nil
		},
	}
}

// CrossEpochSplice serves the current (post-transition) partition shape
// but with a root digest from a superseded epoch spliced into one
// shard — an edge pairing new partition metadata with a retired shard's
// base data. The central signed both digests, but never this pairing,
// so the map signature fails closed.
func CrossEpochSplice() MapAttack {
	var first *shardmap.Signed
	return MapAttack{
		Name:        "cross-epoch-splice",
		Description: "splice a superseded epoch's shard root digest into the current served map",
		Apply: func(sm *shardmap.Signed) error {
			if first == nil {
				first = &shardmap.Signed{Map: sm.Map.Clone(), Sig: sm.Sig}
				return ErrNotApplicable
			}
			if sm.Map.MapEpoch <= first.Map.MapEpoch || sm.Map.Epoch != first.Map.Epoch {
				return ErrNotApplicable
			}
			for i := range sm.Map.Shards {
				for _, old := range first.Map.Shards {
					if !bytes.Equal(old.RootDigest, sm.Map.Shards[i].RootDigest) {
						sm.Map.Shards[i].RootDigest = append([]byte(nil), old.RootDigest...)
						return nil
					}
				}
			}
			return ErrNotApplicable // every digest survived the transition unchanged
		},
	}
}

// MapAttacks returns the shard-map attack catalogue.
func MapAttacks() []MapAttack {
	return []MapAttack{
		DropShardFromMap(),
		RewireShardDigests(),
		ReplayPreSplitMap(),
		HideSplit(),
		CrossEpochSplice(),
	}
}

// All returns the full catalogue (attacks needing parameters get
// placeholder arguments suitable for single-table deployments).
func All() []Attack {
	return []Attack{
		MutateValue(),
		DropTuple(),
		InjectTuple(),
		DuplicateTuple(),
		CorruptVODigest(),
		DropVODigest(),
		ForgeTopDigest(),
		ForgeInteriorNode(),
		CrossSchemeConfusion(),
		MisliftDS(),
		CrossTableReplay("other_table"),
		SwapProjectionDigest(),
		BackdateTimestamp(),
	}
}

// Validate sanity-checks the catalogue.
func Validate(attacks []Attack) error {
	seen := map[string]bool{}
	for _, a := range attacks {
		if a.Name == "" || a.Apply == nil {
			return fmt.Errorf("tamper: malformed attack %+v", a)
		}
		if seen[a.Name] {
			return fmt.Errorf("tamper: duplicate attack %q", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}
