package tamper

// Malicious-relay attacks for the peer distribution tier: mutations a
// compromised SERVING edge could apply to the replication payloads it
// relays to downstream edges (as opposed to the query-response attacks
// in tamper.go, which target clients). Hooks are compatible with
// edge.PeerTamperFn and are driven through real two-tier deployments by
// the security test-suite to show that a peer-fed edge rejects every
// one and heals from the central.

import (
	"sync"

	"edgeauth/internal/wire"
)

// PeerAttack models a malicious relay peer. NewHook builds a fresh
// (possibly stateful) payload-rewriting hook with the edge.PeerTamperFn
// shape: it receives the response frame type, the ref the payload
// answers (table name, or shard ref for partitioned tables), and the
// encoded body, and returns the body to serve instead.
type PeerAttack struct {
	Name        string
	Description string
	NewHook     func() func(mt wire.MsgType, ref string, body []byte) []byte
}

// BitFlipDelta corrupts every relayed delta in transit — the classic
// on-path mutation. Deltas are whole-body signed by the central, so a
// single flipped bit anywhere in the body breaks the signature and the
// downstream edge rejects the payload before touching its replica.
func BitFlipDelta() PeerAttack {
	return PeerAttack{
		Name:        "bit-flip-delta",
		Description: "flip one bit in every relayed delta body",
		NewHook: func() func(wire.MsgType, string, []byte) []byte {
			return func(mt wire.MsgType, ref string, body []byte) []byte {
				if mt != wire.MsgDeltaResp || len(body) == 0 {
					return body
				}
				out := append([]byte(nil), body...)
				out[len(out)/2] ^= 0x01
				return out
			}
		},
	}
}

// ReplayStaleSnapshot freezes the peer's snapshot answers: the first
// body served per ref is captured and replayed forever after — a relay
// trying to wind a bootstrapping edge back to an old (but authentically
// signed) state. The downstream binds every peer snapshot to the exact
// epoch/version/root-digest its central-verified shard map pins, so the
// replay fails the pin check as soon as the table has moved on.
func ReplayStaleSnapshot() PeerAttack {
	return PeerAttack{
		Name:        "replay-stale-snapshot",
		Description: "serve a previously-captured snapshot instead of the current one",
		NewHook: func() func(wire.MsgType, string, []byte) []byte {
			var mu sync.Mutex
			first := make(map[string][]byte)
			return func(mt wire.MsgType, ref string, body []byte) []byte {
				if mt != wire.MsgSnapshotResp {
					return body
				}
				mu.Lock()
				defer mu.Unlock()
				if old, ok := first[ref]; ok {
					return old
				}
				first[ref] = append([]byte(nil), body...)
				return body
			}
		},
	}
}

// WrongShardRelay answers a request for one shard with another shard's
// (authentically signed) payload — set-confusion at the relay layer.
// Payloads are remembered per ref as they are served; once a second ref
// is seen, every answer is swapped for some OTHER ref's payload of the
// same frame type. A relayed delta names its shard ref inside the
// signed body, and a snapshot's root must recover to the requested
// shard's pinned digest, so the downstream rejects the swap either way.
func WrongShardRelay() PeerAttack {
	return PeerAttack{
		Name:        "wrong-shard-relay",
		Description: "answer one shard's request with another shard's signed payload",
		NewHook: func() func(wire.MsgType, string, []byte) []byte {
			var mu sync.Mutex
			seen := make(map[wire.MsgType]map[string][]byte)
			return func(mt wire.MsgType, ref string, body []byte) []byte {
				if mt != wire.MsgDeltaResp && mt != wire.MsgSnapshotResp {
					return body
				}
				mu.Lock()
				defer mu.Unlock()
				byRef := seen[mt]
				if byRef == nil {
					byRef = make(map[string][]byte)
					seen[mt] = byRef
				}
				byRef[ref] = append([]byte(nil), body...)
				for other, b := range byRef {
					if other != ref {
						return b
					}
				}
				return body
			}
		},
	}
}

// PeerAttacks returns the malicious-relay catalogue.
func PeerAttacks() []PeerAttack {
	return []PeerAttack{
		BitFlipDelta(),
		ReplayStaleSnapshot(),
		WrongShardRelay(),
	}
}
