package tamper

import (
	"context"
	"errors"
	"sync"
	"testing"

	"edgeauth/internal/digest"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/storage"
	"edgeauth/internal/vbtree"
	"edgeauth/internal/verify"
	"edgeauth/internal/vo"
	"edgeauth/internal/workload"
)

var (
	keyOnce sync.Once
	testKey *sig.PrivateKey
)

func signer(t testing.TB) *sig.PrivateKey {
	t.Helper()
	keyOnce.Do(func() { testKey = sig.MustGenerateKey(512) })
	return testKey
}

type harness struct {
	tree *vbtree.Tree
	ver  *verify.Verifier
}

func newHarness(t *testing.T, rows int) *harness {
	t.Helper()
	k := signer(t)
	spec := workload.DefaultSpec(rows)
	sch, err := spec.Schema()
	if err != nil {
		t.Fatal(err)
	}
	tuples, err := spec.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	mem, _ := storage.NewMemPager(1024)
	bp, _ := storage.NewBufferPool(mem, 8192)
	heap, _ := storage.NewHeapFile(bp)
	acc := digest.MustNew(digest.DefaultParams())
	tree, err := vbtree.Build(vbtree.Config{
		Pool: bp, Heap: heap, Schema: sch, Acc: acc,
		Signer: k, Pub: k.Public(),
	}, tuples, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{
		tree: tree,
		ver:  &verify.Verifier{Key: k.Public(), Acc: acc, Schema: sch},
	}
}

func (h *harness) freshResponse(t *testing.T, projected bool) (*vo.ResultSet, *vo.VO) {
	t.Helper()
	lo, hi := schema.Int64(20), schema.Int64(80)
	q := vbtree.Query{Lo: &lo, Hi: &hi}
	if projected {
		q.Project = []string{"id", "cat"}
	}
	rs, w, err := h.tree.RunQuery(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ver.Verify(rs, w); err != nil {
		t.Fatalf("baseline verification failed: %v", err)
	}
	return rs, w
}

func TestCatalogueIsValid(t *testing.T) {
	if err := Validate(All()); err != nil {
		t.Fatal(err)
	}
	if err := Validate([]Attack{{Name: ""}}); err == nil {
		t.Fatal("malformed attack accepted")
	}
	if err := Validate([]Attack{MutateValue(), MutateValue()}); err == nil {
		t.Fatal("duplicate attack accepted")
	}
	// Attack names are a flat namespace across all three catalogues —
	// edged -tamper resolves by name with no qualifier.
	seen := map[string]bool{}
	for _, a := range All() {
		seen[a.Name] = true
	}
	for _, a := range MapAttacks() {
		if a.Name == "" || a.Apply == nil {
			t.Fatalf("malformed map attack %+v", a)
		}
		if seen[a.Name] {
			t.Fatalf("map attack %q collides with another catalogue entry", a.Name)
		}
		seen[a.Name] = true
	}
	for _, a := range PeerAttacks() {
		if a.Name == "" {
			t.Fatalf("malformed peer attack %+v", a)
		}
		if seen[a.Name] {
			t.Fatalf("peer attack %q collides with another catalogue entry", a.Name)
		}
		seen[a.Name] = true
	}
}

func TestEveryAttackIsDetected(t *testing.T) {
	h := newHarness(t, 300)
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			// Projected responses give attacks like swap-projection-digest
			// something to work with.
			rs, w := h.freshResponse(t, true)
			if err := a.Apply(rs, w); err != nil {
				if errors.Is(err, ErrNotApplicable) {
					t.Skipf("attack not applicable: %v", err)
				}
				t.Fatal(err)
			}
			if err := h.ver.Verify(rs, w); err == nil {
				t.Fatalf("attack %q went undetected", a.Name)
			}
		})
	}
}

func TestEveryAttackIsDetectedUnprojected(t *testing.T) {
	h := newHarness(t, 300)
	for _, a := range All() {
		if a.Name == "swap-projection-digest" {
			continue // needs D_P, exercised in the projected variant
		}
		t.Run(a.Name, func(t *testing.T) {
			rs, w := h.freshResponse(t, false)
			if err := a.Apply(rs, w); err != nil {
				if errors.Is(err, ErrNotApplicable) {
					t.Skipf("attack not applicable: %v", err)
				}
				t.Fatal(err)
			}
			if err := h.ver.Verify(rs, w); err == nil {
				t.Fatalf("attack %q went undetected", a.Name)
			}
		})
	}
}

func TestAttacksOnEmptyResultMostlyInapplicable(t *testing.T) {
	h := newHarness(t, 100)
	lo, hi := schema.Int64(5000), schema.Int64(6000)
	rs, w, err := h.tree.RunQuery(context.Background(), vbtree.Query{Lo: &lo, Hi: &hi})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []Attack{MutateValue(), DropTuple(), InjectTuple(), DuplicateTuple()} {
		if err := a.Apply(rs, w); !errors.Is(err, ErrNotApplicable) {
			t.Errorf("%s on empty result: %v, want ErrNotApplicable", a.Name, err)
		}
	}
	// The forged-digest attack still applies and is still caught.
	fa := ForgeTopDigest()
	if err := fa.Apply(rs, w); err != nil {
		t.Fatal(err)
	}
	if err := h.ver.Verify(rs, w); err == nil {
		t.Fatal("forged top digest on empty result went undetected")
	}
}

func TestStaleKeyReplayDetectedViaRegistry(t *testing.T) {
	h := newHarness(t, 100)
	rs, w := h.freshResponse(t, false)

	// A registry that knows version 0 (valid) and version 7 (expired
	// before the VO's timestamp).
	k := signer(t)
	reg := sig.NewRegistry()
	cur := k.Public()
	cur.Version = 0
	reg.Put(cur)
	old := k.Public()
	old.Version = 7
	old.NotAfter = 1 // expired in 1970
	reg.Put(old)
	ver := &verify.Verifier{Keys: reg, Acc: h.ver.Acc, Schema: h.ver.Schema}
	if err := ver.Verify(rs, w); err != nil {
		t.Fatalf("baseline with registry: %v", err)
	}
	if err := StaleKeyReplay(7).Apply(rs, w); err != nil {
		t.Fatal(err)
	}
	err := ver.Verify(rs, w)
	if !errors.Is(err, verify.ErrKeyVersion) {
		t.Fatalf("stale key replay: %v, want ErrKeyVersion", err)
	}
}

// TestBackdateTimestampAttack pins the §3.4 freshness fix: the rewound
// timestamp was ACCEPTED under the old semantics (key validity resolved
// at the edge-supplied VO timestamp — emulated here by pinning the
// verifier clock to the attacker's timestamp, which is exactly what
// trusting it amounted to) and is REJECTED with ErrKeyVersion by the
// fixed client, which checks freshness against its own clock.
func TestBackdateTimestampAttack(t *testing.T) {
	h := newHarness(t, 100)
	rs, w := h.freshResponse(t, false)
	if err := BackdateTimestamp().Apply(rs, w); err != nil {
		t.Fatal(err)
	}

	legacy := &verify.Verifier{
		Key: signer(t).Public(), Acc: h.ver.Acc, Schema: h.ver.Schema,
		Now: func() int64 { return w.Timestamp },
	}
	if err := legacy.Verify(rs, w); err != nil {
		t.Fatalf("old edge-clock semantics no longer accept the backdated VO (attack demo broken): %v", err)
	}

	if err := h.ver.Verify(rs, w); !errors.Is(err, verify.ErrKeyVersion) {
		t.Fatalf("backdated VO: %v, want ErrKeyVersion", err)
	}
}

func TestCrossTableReplaySkipsSameName(t *testing.T) {
	a := CrossTableReplay("items")
	rs := &vo.ResultSet{Table: "items"}
	if err := a.Apply(rs, &vo.VO{}); !errors.Is(err, ErrNotApplicable) {
		t.Fatalf("same-name replay: %v", err)
	}
}
