package digest

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func testAcc(t *testing.T) *Accumulator {
	t.Helper()
	a, err := New(DefaultParams())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return a
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		p    Params
		ok   bool
	}{
		{"defaults", DefaultParams(), true},
		{"zero exponent takes default", Params{Size: 16, Mode: Mod2K}, true},
		{"even exponent", Params{Size: 16, Exponent: 4, Mode: Mod2K}, false},
		{"negative exponent", Params{Size: 16, Exponent: -3, Mode: Mod2K}, false},
		{"size too small", Params{Size: 2, Exponent: 3, Mode: Mod2K}, false},
		{"size too large", Params{Size: 1024, Exponent: 3, Mode: Mod2K}, false},
		{"modbig missing modulus", Params{Exponent: 3, Mode: ModBig}, false},
		{"modbig even modulus", Params{Exponent: 3, Mode: ModBig, Modulus: big.NewInt(1 << 30)}, false},
		{"modbig tiny modulus", Params{Exponent: 3, Mode: ModBig, Modulus: big.NewInt(15)}, false},
		{"modbig ok", Params{Exponent: 3, Mode: ModBig, Modulus: big.NewInt((1 << 40) + 1)}, true},
		{"unknown mode", Params{Exponent: 3, Mode: Mode(42)}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := New(c.p)
			if (err == nil) != c.ok {
				t.Fatalf("New(%+v): err=%v, want ok=%v", c.p, err, c.ok)
			}
		})
	}
}

func TestHashAttributeDeterministic(t *testing.T) {
	a := testAcc(t)
	d1 := a.HashAttribute("db", "tbl", "col", []byte("k1"), []byte("v1"))
	d2 := a.HashAttribute("db", "tbl", "col", []byte("k1"), []byte("v1"))
	if !d1.Equal(d2) {
		t.Fatalf("same inputs produced different digests: %v vs %v", d1, d2)
	}
	if len(d1) != a.Len() {
		t.Fatalf("digest length %d, want %d", len(d1), a.Len())
	}
}

func TestHashAttributeDomainSeparation(t *testing.T) {
	a := testAcc(t)
	base := a.HashAttribute("db", "tbl", "col", []byte("key"), []byte("val"))
	variants := []Value{
		a.HashAttribute("db2", "tbl", "col", []byte("key"), []byte("val")),
		a.HashAttribute("db", "tbl2", "col", []byte("key"), []byte("val")),
		a.HashAttribute("db", "tbl", "col2", []byte("key"), []byte("val")),
		a.HashAttribute("db", "tbl", "col", []byte("key2"), []byte("val")),
		a.HashAttribute("db", "tbl", "col", []byte("key"), []byte("val2")),
		// Concatenation-ambiguity probes: moving a byte across a field
		// boundary must change the digest.
		a.HashAttribute("db", "tbl", "colk", []byte("ey"), []byte("val")),
		a.HashAttribute("db", "tbl", "col", []byte("keyv"), []byte("al")),
	}
	for i, v := range variants {
		if base.Equal(v) {
			t.Errorf("variant %d collided with base digest", i)
		}
	}
}

func TestDigestsAreUnits(t *testing.T) {
	a := testAcc(t)
	for i := 0; i < 64; i++ {
		d := a.HashBytes("unit-test", []byte{byte(i)})
		if d[len(d)-1]&1 == 0 {
			t.Fatalf("digest %d is even under Mod2K: %v", i, d)
		}
	}
}

func TestCombineCommutative(t *testing.T) {
	a := testAcc(t)
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(n%8) + 2
		ds := make([]Value, k)
		for i := range ds {
			buf := make([]byte, 12)
			rng.Read(buf)
			ds[i] = a.HashBytes("quick", buf)
		}
		want, err := a.Combine(ds...)
		if err != nil {
			return false
		}
		perm := rng.Perm(k)
		shuffled := make([]Value, k)
		for i, p := range perm {
			shuffled[i] = ds[p]
		}
		got, err := a.Combine(shuffled...)
		if err != nil {
			return false
		}
		return want.Equal(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCombineEmptyIsIdentity(t *testing.T) {
	a := testAcc(t)
	got, err := a.Combine()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(a.Identity()) {
		t.Fatalf("empty combine = %v, want identity %v", got, a.Identity())
	}
}

func TestCombineSingleEqualsG(t *testing.T) {
	a := testAcc(t)
	d := a.HashBytes("single", []byte("x"))
	g, err := a.G(d)
	if err != nil {
		t.Fatal(err)
	}
	c, err := a.Combine(d)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(c) {
		t.Fatalf("Combine(d)=%v, want g(d)=%v", c, g)
	}
}

func TestAccAddRemoveRoundTrip(t *testing.T) {
	a := testAcc(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := make([]Value, 6)
		for i := range ds {
			buf := make([]byte, 10)
			rng.Read(buf)
			ds[i] = a.HashBytes("rt", buf)
		}
		acc := a.NewAcc()
		for _, d := range ds {
			if err := acc.Add(d); err != nil {
				return false
			}
		}
		full := acc.Value()
		// Remove one element; result must equal combining the rest.
		victim := rng.Intn(len(ds))
		if err := acc.Remove(ds[victim]); err != nil {
			return false
		}
		rest := make([]Value, 0, len(ds)-1)
		for i, d := range ds {
			if i != victim {
				rest = append(rest, d)
			}
		}
		want, err := a.Combine(rest...)
		if err != nil {
			return false
		}
		if !acc.Value().Equal(want) {
			return false
		}
		// Re-adding restores the full digest.
		if err := acc.Add(ds[victim]); err != nil {
			return false
		}
		return acc.Value().Equal(full)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAccFromResumesIncrementalInsert(t *testing.T) {
	a := testAcc(t)
	d1 := a.HashBytes("inc", []byte("one"))
	d2 := a.HashBytes("inc", []byte("two"))
	d3 := a.HashBytes("inc", []byte("three"))

	partial, err := a.Combine(d1, d2)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := a.AccFrom(partial)
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Add(d3); err != nil {
		t.Fatal(err)
	}
	want, err := a.Combine(d1, d2, d3)
	if err != nil {
		t.Fatal(err)
	}
	if !acc.Value().Equal(want) {
		t.Fatalf("incremental insert digest %v != batch digest %v", acc.Value(), want)
	}
}

func TestAddCombinedMatchesProductAlgebra(t *testing.T) {
	a := testAcc(t)
	d1 := a.HashBytes("ac", []byte("a"))
	d2 := a.HashBytes("ac", []byte("b"))
	g1, _ := a.G(d1)
	g2, _ := a.G(d2)

	acc := a.NewAcc()
	if err := acc.AddCombined(g1); err != nil {
		t.Fatal(err)
	}
	if err := acc.AddCombined(g2); err != nil {
		t.Fatal(err)
	}
	want, err := a.Combine(d1, d2)
	if err != nil {
		t.Fatal(err)
	}
	if !acc.Value().Equal(want) {
		t.Fatalf("AddCombined product %v != Combine %v", acc.Value(), want)
	}
}

func TestModBigAlgebraMatches(t *testing.T) {
	// The same commutativity and removal algebra must hold under ModBig.
	m := new(big.Int).Lsh(big.NewInt(1), 256)
	m.Add(m, big.NewInt(297)) // odd
	a, err := New(Params{Exponent: 3, Mode: ModBig, Modulus: m})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 33 {
		t.Fatalf("Len = %d, want 33 for a 257-bit modulus", a.Len())
	}
	d1 := a.HashBytes("mb", []byte("p"))
	d2 := a.HashBytes("mb", []byte("q"))
	c12, err := a.Combine(d1, d2)
	if err != nil {
		t.Fatal(err)
	}
	c21, err := a.Combine(d2, d1)
	if err != nil {
		t.Fatal(err)
	}
	if !c12.Equal(c21) {
		t.Fatal("ModBig combine is not commutative")
	}
	acc, err := a.AccFrom(c12)
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Remove(d2); err != nil {
		t.Fatal(err)
	}
	want, _ := a.Combine(d1)
	if !acc.Value().Equal(want) {
		t.Fatal("ModBig removal did not invert combination")
	}
}

func TestValueLengthMismatchRejected(t *testing.T) {
	a := testAcc(t)
	if _, err := a.G(Value{1, 2, 3}); err == nil {
		t.Fatal("G accepted a short value")
	}
	if _, err := a.Combine(Value(make([]byte, 99))); err == nil {
		t.Fatal("Combine accepted a mis-sized value")
	}
	if _, err := a.AccFrom(Value{}); err == nil {
		t.Fatal("AccFrom accepted an empty value")
	}
}

func TestCountersTrackOps(t *testing.T) {
	var c Counters
	p := DefaultParams()
	p.Counters = &c
	a := MustNew(p)
	d1 := a.HashBytes("ctr", []byte("1"))
	d2 := a.HashBytes("ctr", []byte("2"))
	if _, err := a.Combine(d1, d2); err != nil {
		t.Fatal(err)
	}
	s := c.Snapshot()
	if s.HashOps != 2 {
		t.Errorf("HashOps = %d, want 2", s.HashOps)
	}
	if s.CombineOps != 2 {
		t.Errorf("CombineOps = %d, want 2", s.CombineOps)
	}
	c.Reset()
	if s := c.Snapshot(); s.HashOps != 0 || s.CombineOps != 0 || s.RecoverOps != 0 {
		t.Errorf("Reset left counters non-zero: %+v", s)
	}
}

func TestCounterSnapshotSub(t *testing.T) {
	a := CounterSnapshot{HashOps: 10, CombineOps: 7, RecoverOps: 3}
	b := CounterSnapshot{HashOps: 4, CombineOps: 2, RecoverOps: 1}
	d := a.Sub(b)
	if d.HashOps != 6 || d.CombineOps != 5 || d.RecoverOps != 2 {
		t.Fatalf("Sub = %+v", d)
	}
}

func TestValueCloneIndependent(t *testing.T) {
	a := testAcc(t)
	d := a.HashBytes("clone", []byte("x"))
	c := d.Clone()
	c[0] ^= 0xFF
	if d.Equal(c) {
		t.Fatal("Clone shares storage with original")
	}
}

func TestModeString(t *testing.T) {
	if Mod2K.String() != "mod2k" || ModBig.String() != "modbig" {
		t.Fatal("Mode.String mismatch")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode should still render")
	}
}

func TestWideDigestExpansion(t *testing.T) {
	// A 64-byte digest needs counter-mode expansion beyond one SHA-256 block.
	a := MustNew(Params{Size: 64, Exponent: 3, Mode: Mod2K})
	d := a.HashBytes("wide", []byte("payload"))
	if len(d) != 64 {
		t.Fatalf("len = %d, want 64", len(d))
	}
	allZero := true
	for _, b := range d[32:] {
		if b != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		t.Fatal("expanded tail is all zeros; expansion not applied")
	}
}

func BenchmarkHashAttribute(b *testing.B) {
	a := MustNew(DefaultParams())
	key := []byte("0000000000000042")
	val := []byte("some attribute value")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.HashAttribute("benchdb", "orders", "amount", key, val)
	}
}

func BenchmarkCombine10(b *testing.B) {
	a := MustNew(DefaultParams())
	ds := make([]Value, 10)
	for i := range ds {
		ds[i] = a.HashBytes("bench", []byte{byte(i)})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := a.Combine(ds...); err != nil {
			b.Fatal(err)
		}
	}
}
