// Package digest implements the cryptographic digest machinery of the
// VB-tree (Pang & Tan, ICDE 2004): a domain-separated one-way hash h over
// attribute values, and the commutative combination function
//
//	g(x) = x^e mod m
//
// whose outputs are coalesced with multiplication modulo m. Because
// multiplication is commutative, a set of digests {d1..dn} can be combined
// in any order without affecting the final digest — the property the paper
// relies on for (a) order-free verification objects, (b) projection at the
// edge server, and (c) incremental digest maintenance on insert.
//
// Two modulus profiles are provided (paper §3.2, "we can implement g by
// picking m = 2^k ... to optimize the modulo operation"):
//
//   - Mod2K: m = 2^(8·Size). This is the paper's optimization and keeps
//     digests at exactly Size bytes (Table 1 default: 16). Digests are
//     forced odd so every digest is a unit modulo 2^k, which makes the
//     accumulator invertible (required for incremental removal, and
//     harmless for the paper's insert path).
//   - ModBig: m is a caller-supplied odd modulus (e.g. an RSA modulus),
//     trading speed and size for a hardened multiplicative group.
//
// The hash h follows formula (1) of the paper: it binds the database name,
// table name, attribute name, tuple key and attribute value, so a digest
// for one attribute cannot be replayed as a digest for another.
package digest

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"sync/atomic"
)

// Mode selects the modulus profile of an Accumulator.
type Mode int

const (
	// Mod2K uses m = 2^(8·Size), the paper's fast profile.
	Mod2K Mode = iota
	// ModBig uses a caller-supplied odd modulus.
	ModBig
)

func (m Mode) String() string {
	switch m {
	case Mod2K:
		return "mod2k"
	case ModBig:
		return "modbig"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// DefaultSize is the digest length in bytes from Table 1 of the paper.
const DefaultSize = 16

// DefaultExponent is the exponent e of g(x) = x^e mod m. The paper's
// worked example evaluates x^15 with four squarings and four reductions;
// we adopt the same exponent as the default. It must be odd so that g
// maps units to units modulo 2^k.
const DefaultExponent = 15

// Value is an unsigned digest: the canonical big-endian, fixed-width
// encoding of an element of Z_m. Its length equals Accumulator.Len().
type Value []byte

// Clone returns an independent copy of v.
func (v Value) Clone() Value {
	c := make(Value, len(v))
	copy(c, v)
	return c
}

// Equal reports whether two digests are byte-identical.
func (v Value) Equal(o Value) bool {
	if len(v) != len(o) {
		return false
	}
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders a short hex prefix, for logs and tests.
func (v Value) String() string {
	const max = 8
	if len(v) <= max {
		return fmt.Sprintf("%x", []byte(v))
	}
	return fmt.Sprintf("%x…", []byte(v[:max]))
}

// Counters accumulates operation counts for the cost accounting of the
// paper's §4.3 (Figure 12/13 reproduce client computation cost in units of
// Cost_h). All fields are updated atomically and may be shared across
// goroutines.
type Counters struct {
	HashOps    atomic.Int64 // evaluations of h (Cost_h)
	CombineOps atomic.Int64 // pairwise digest combinations (Cost_k)
	RecoverOps atomic.Int64 // signature recoveries s⁻¹ (Cost_s); bumped by package sig
	SignOps    atomic.Int64 // signature generations s (server-side cost); bumped by package sig
}

// Snapshot returns a plain-struct copy of the counters.
func (c *Counters) Snapshot() CounterSnapshot {
	return CounterSnapshot{
		HashOps:    c.HashOps.Load(),
		CombineOps: c.CombineOps.Load(),
		RecoverOps: c.RecoverOps.Load(),
		SignOps:    c.SignOps.Load(),
	}
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	c.HashOps.Store(0)
	c.CombineOps.Store(0)
	c.RecoverOps.Store(0)
	c.SignOps.Store(0)
}

// CounterSnapshot is an immutable copy of Counters.
type CounterSnapshot struct {
	HashOps    int64
	CombineOps int64
	RecoverOps int64
	SignOps    int64
}

// Sub returns the element-wise difference s - o.
func (s CounterSnapshot) Sub(o CounterSnapshot) CounterSnapshot {
	return CounterSnapshot{
		HashOps:    s.HashOps - o.HashOps,
		CombineOps: s.CombineOps - o.CombineOps,
		RecoverOps: s.RecoverOps - o.RecoverOps,
		SignOps:    s.SignOps - o.SignOps,
	}
}

// Params configures an Accumulator.
type Params struct {
	// Size is the digest length in bytes for the Mod2K profile.
	// Ignored for ModBig (the modulus determines the length).
	Size int
	// Exponent is e in g(x) = x^e mod m. Must be positive and odd.
	Exponent int64
	// Mode selects the modulus profile.
	Mode Mode
	// Modulus is required for ModBig and must be odd and > 2.
	Modulus *big.Int
	// Counters, when non-nil, receives operation counts.
	Counters *Counters
}

// DefaultParams returns the paper's defaults: 16-byte digests, e = 15,
// m = 2^128.
func DefaultParams() Params {
	return Params{Size: DefaultSize, Exponent: DefaultExponent, Mode: Mod2K}
}

// Accumulator implements h, g and the commutative combination. It is
// immutable after construction and safe for concurrent use.
type Accumulator struct {
	size     int      // canonical encoded length of a Value
	exponent *big.Int // e
	mode     Mode
	modulus  *big.Int // m
	mask     *big.Int // m-1 when mode == Mod2K (for fast reduction)
	counters *Counters
}

// New validates p and builds an Accumulator.
func New(p Params) (*Accumulator, error) {
	if p.Exponent == 0 {
		p.Exponent = DefaultExponent
	}
	if p.Exponent < 0 || p.Exponent%2 == 0 {
		return nil, fmt.Errorf("digest: exponent must be positive and odd, got %d", p.Exponent)
	}
	a := &Accumulator{
		exponent: big.NewInt(p.Exponent),
		mode:     p.Mode,
		counters: p.Counters,
	}
	switch p.Mode {
	case Mod2K:
		if p.Size == 0 {
			p.Size = DefaultSize
		}
		if p.Size < 4 || p.Size > 512 {
			return nil, fmt.Errorf("digest: size must be in [4,512] bytes, got %d", p.Size)
		}
		a.size = p.Size
		a.modulus = new(big.Int).Lsh(big.NewInt(1), uint(8*p.Size))
		a.mask = new(big.Int).Sub(a.modulus, big.NewInt(1))
	case ModBig:
		if p.Modulus == nil || p.Modulus.Sign() <= 0 || p.Modulus.Bit(0) == 0 || p.Modulus.BitLen() < 24 {
			return nil, errors.New("digest: ModBig requires an odd modulus of at least 24 bits")
		}
		a.modulus = new(big.Int).Set(p.Modulus)
		a.size = (a.modulus.BitLen() + 7) / 8
	default:
		return nil, fmt.Errorf("digest: unknown mode %v", p.Mode)
	}
	return a, nil
}

// MustNew is New for parameters known to be valid; it panics on error.
func MustNew(p Params) *Accumulator {
	a, err := New(p)
	if err != nil {
		panic(err)
	}
	return a
}

// Len returns the canonical byte length of a Value under this accumulator.
func (a *Accumulator) Len() int { return a.size }

// Mode returns the modulus profile.
func (a *Accumulator) Mode() Mode { return a.mode }

// Modulus returns a copy of m.
func (a *Accumulator) Modulus() *big.Int { return new(big.Int).Set(a.modulus) }

// Exponent returns e.
func (a *Accumulator) Exponent() int64 { return a.exponent.Int64() }

// Counters returns the counter sink (possibly nil).
func (a *Accumulator) Counters() *Counters { return a.counters }

func (a *Accumulator) countHash() {
	if a.counters != nil {
		a.counters.HashOps.Add(1)
	}
}

func (a *Accumulator) countCombine(n int64) {
	if a.counters != nil && n > 0 {
		a.counters.CombineOps.Add(n)
	}
}

// encode renders x (already reduced mod m) as a fixed-width big-endian
// Value of length a.size.
func (a *Accumulator) encode(x *big.Int) Value {
	v := make(Value, a.size)
	x.FillBytes(v)
	return v
}

// decode parses a canonical Value and reduces it modulo m.
func (a *Accumulator) decode(v Value) (*big.Int, error) {
	if len(v) != a.size {
		return nil, fmt.Errorf("digest: value length %d, want %d", len(v), a.size)
	}
	x := new(big.Int).SetBytes(v)
	if x.Cmp(a.modulus) >= 0 {
		x.Mod(x, a.modulus)
	}
	return x, nil
}

// forceUnit coerces x into the unit group. For Mod2K this sets the low bit
// (odd residues are exactly the units of Z_{2^k}); for ModBig a zero is
// mapped to one (any other residue is a unit with overwhelming probability
// for an RSA-style modulus).
func (a *Accumulator) forceUnit(x *big.Int) {
	switch a.mode {
	case Mod2K:
		x.SetBit(x, 0, 1)
	case ModBig:
		if x.Sign() == 0 {
			x.SetInt64(1)
		}
	}
}

// HashAttribute computes formula (1)'s inner hash
//
//	h(dbName | tableName | attrName | key | value)
//
// with length-prefixed framing of each field (so no two distinct field
// tuples collide by concatenation ambiguity), truncated/reduced into Z_m
// and coerced to a unit.
func (a *Accumulator) HashAttribute(db, table, attr string, key, value []byte) Value {
	a.countHash()
	hw := sha256.New()
	var lenbuf [4]byte
	writeField := func(b []byte) {
		binary.BigEndian.PutUint32(lenbuf[:], uint32(len(b)))
		hw.Write(lenbuf[:])
		hw.Write(b)
	}
	writeField([]byte(db))
	writeField([]byte(table))
	writeField([]byte(attr))
	writeField(key)
	writeField(value)
	return a.digestFromHash(hw.Sum(nil))
}

// HashBytes computes a generic domain-separated one-way digest of data under
// the given domain label. It is used for node-level payloads that are not
// attribute values (e.g. Naive-baseline tuple serializations).
func (a *Accumulator) HashBytes(domain string, data []byte) Value {
	a.countHash()
	hw := sha256.New()
	var lenbuf [4]byte
	binary.BigEndian.PutUint32(lenbuf[:], uint32(len(domain)))
	hw.Write(lenbuf[:])
	hw.Write([]byte(domain))
	hw.Write(data)
	return a.digestFromHash(hw.Sum(nil))
}

// digestFromHash maps a raw hash output into a canonical unit Value.
// When the target is wider than one SHA-256 block, the hash is expanded
// with counter-mode rehashing.
func (a *Accumulator) digestFromHash(sum []byte) Value {
	need := a.size
	buf := make([]byte, 0, need)
	buf = append(buf, sum...)
	ctr := uint32(0)
	for len(buf) < need {
		hw := sha256.New()
		var cb [4]byte
		binary.BigEndian.PutUint32(cb[:], ctr)
		hw.Write(cb[:])
		hw.Write(sum)
		buf = hw.Sum(buf)
		ctr++
	}
	x := new(big.Int).SetBytes(buf[:need])
	x.Mod(x, a.modulus)
	a.forceUnit(x)
	return a.encode(x)
}

// G applies the one-way combiner g(x) = x^e mod m to a single digest.
func (a *Accumulator) G(v Value) (Value, error) {
	x, err := a.decode(v)
	if err != nil {
		return nil, err
	}
	x.Exp(x, a.exponent, a.modulus)
	return a.encode(x), nil
}

// Combine coalesces a set of digests into one:
//
//	Combine(d1..dn) = Π g(di)  (mod m)
//
// The multiplication is commutative, so the order of vs never affects the
// result. Combine of an empty set yields the multiplicative identity.
func (a *Accumulator) Combine(vs ...Value) (Value, error) {
	acc := a.NewAcc()
	for _, v := range vs {
		if err := acc.Add(v); err != nil {
			return nil, err
		}
	}
	return acc.Value(), nil
}

// Identity returns the digest of the empty combination (the canonical
// encoding of 1).
func (a *Accumulator) Identity() Value {
	return a.encode(big.NewInt(1))
}

// Lift applies g to v k times: Lift(v, k) = g^k(v). Because g is
// multiplicative, lifting a combined product equals combining the lifted
// factors — the property that lets a verifier reconstruct a multi-level
// subtree digest as a flat product of lifted digests.
func (a *Accumulator) Lift(v Value, k int) (Value, error) {
	if k < 0 {
		return nil, fmt.Errorf("digest: negative lift %d", k)
	}
	x, err := a.decode(v)
	if err != nil {
		return nil, err
	}
	for i := 0; i < k; i++ {
		x.Exp(x, a.exponent, a.modulus)
	}
	a.countCombine(int64(k))
	return a.encode(x), nil
}

// Mul multiplies two already-combined digests modulo m (no g applied).
func (a *Accumulator) Mul(u, v Value) (Value, error) {
	x, err := a.decode(u)
	if err != nil {
		return nil, err
	}
	y, err := a.decode(v)
	if err != nil {
		return nil, err
	}
	x.Mul(x, y)
	x.Mod(x, a.modulus)
	a.countCombine(1)
	return a.encode(x), nil
}

// Acc is a running accumulator over digests: it maintains Π g(di) mod m
// incrementally. An Acc is not safe for concurrent use.
type Acc struct {
	a *Accumulator
	v *big.Int
}

// NewAcc returns an accumulator initialized to the identity.
func (a *Accumulator) NewAcc() *Acc {
	return &Acc{a: a, v: big.NewInt(1)}
}

// AccFrom resumes accumulation from a previously combined digest. This is
// the basis of the paper's incremental insert: the central server decodes
// the current (unsigned) node digest and multiplies in the new tuple's
// digest.
func (a *Accumulator) AccFrom(combined Value) (*Acc, error) {
	x, err := a.decode(combined)
	if err != nil {
		return nil, err
	}
	return &Acc{a: a, v: x}, nil
}

// Add multiplies g(d) into the accumulator.
func (acc *Acc) Add(d Value) error {
	x, err := acc.a.decode(d)
	if err != nil {
		return err
	}
	x.Exp(x, acc.a.exponent, acc.a.modulus)
	acc.v.Mul(acc.v, x)
	acc.reduce()
	acc.a.countCombine(1)
	return nil
}

// AddCombined multiplies an already-combined digest (a product of g-values)
// into the accumulator without applying g again. This is how a parent
// digest absorbs a child subtree's combined digest during verification of
// multi-level enveloping subtrees, where the child side is reconstructed
// bottom-up and then g-lifted exactly once by the caller.
func (acc *Acc) AddCombined(d Value) error {
	x, err := acc.a.decode(d)
	if err != nil {
		return err
	}
	acc.v.Mul(acc.v, x)
	acc.reduce()
	acc.a.countCombine(1)
	return nil
}

// Remove divides g(d) out of the accumulator. It fails if g(d) is not a
// unit modulo m (impossible under Mod2K, where all digests are odd).
func (acc *Acc) Remove(d Value) error {
	x, err := acc.a.decode(d)
	if err != nil {
		return err
	}
	x.Exp(x, acc.a.exponent, acc.a.modulus)
	inv := new(big.Int).ModInverse(x, acc.a.modulus)
	if inv == nil {
		return fmt.Errorf("digest: %v is not invertible modulo m", d)
	}
	acc.v.Mul(acc.v, inv)
	acc.reduce()
	acc.a.countCombine(1)
	return nil
}

func (acc *Acc) reduce() {
	if acc.a.mode == Mod2K {
		acc.v.And(acc.v, acc.a.mask)
	} else {
		acc.v.Mod(acc.v, acc.a.modulus)
	}
}

// Value returns the canonical encoding of the current accumulator state.
// The Acc remains usable afterwards.
func (acc *Acc) Value() Value {
	return acc.a.encode(new(big.Int).Set(acc.v))
}
