package sig

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
)

// Wire format of a public key:
//
//	u32 version | i64 notBefore | i64 notAfter |
//	u32 len(N) | N bytes | u32 len(E) | E bytes
//
// Big-endian throughout, matching the rest of the repository's codecs.

// MarshalBinary encodes the public key for distribution to clients.
func (p *PublicKey) MarshalBinary() ([]byte, error) {
	if p.N == nil || p.E == nil {
		return nil, errors.New("sig: cannot marshal incomplete public key")
	}
	nb := p.N.Bytes()
	eb := p.E.Bytes()
	out := make([]byte, 0, 4+8+8+4+len(nb)+4+len(eb))
	var b8 [8]byte
	var b4 [4]byte
	binary.BigEndian.PutUint32(b4[:], p.Version)
	out = append(out, b4[:]...)
	binary.BigEndian.PutUint64(b8[:], uint64(p.NotBefore))
	out = append(out, b8[:]...)
	binary.BigEndian.PutUint64(b8[:], uint64(p.NotAfter))
	out = append(out, b8[:]...)
	binary.BigEndian.PutUint32(b4[:], uint32(len(nb)))
	out = append(out, b4[:]...)
	out = append(out, nb...)
	binary.BigEndian.PutUint32(b4[:], uint32(len(eb)))
	out = append(out, b4[:]...)
	out = append(out, eb...)
	return out, nil
}

// UnmarshalBinary decodes a public key produced by MarshalBinary.
func (p *PublicKey) UnmarshalBinary(data []byte) error {
	const fixed = 4 + 8 + 8
	if len(data) < fixed+4 {
		return errors.New("sig: public key blob truncated")
	}
	p.Version = binary.BigEndian.Uint32(data[0:4])
	p.NotBefore = int64(binary.BigEndian.Uint64(data[4:12]))
	p.NotAfter = int64(binary.BigEndian.Uint64(data[12:20]))
	off := fixed
	readBig := func() (*big.Int, error) {
		if off+4 > len(data) {
			return nil, errors.New("sig: public key blob truncated")
		}
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		off += 4
		if n < 0 || off+n > len(data) {
			return nil, errors.New("sig: public key blob truncated")
		}
		v := new(big.Int).SetBytes(data[off : off+n])
		off += n
		return v, nil
	}
	n, err := readBig()
	if err != nil {
		return err
	}
	e, err := readBig()
	if err != nil {
		return err
	}
	if off != len(data) {
		return fmt.Errorf("sig: %d trailing bytes in public key blob", len(data)-off)
	}
	if n.BitLen() < MinBits {
		return fmt.Errorf("sig: unmarshaled modulus too small (%d bits)", n.BitLen())
	}
	if e.Sign() <= 0 {
		return errors.New("sig: unmarshaled exponent not positive")
	}
	p.N, p.E = n, e
	return nil
}
