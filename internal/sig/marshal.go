package sig

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
)

// Wire format of a public key. SchemeRSAFull keys keep the original
// layout byte for byte, so every key minted by older releases round-trips
// unchanged:
//
//	u32 version | i64 notBefore | i64 notAfter |
//	u32 len(N) | N bytes | u32 len(E) | E bytes
//
// Other schemes reuse the header and mark themselves with len(N) == 0 —
// unambiguous because the legacy decoder rejects any modulus under
// MinBits, so a real key can never encode a zero-length N:
//
//	u32 version | i64 notBefore | i64 notAfter | u32 0 | u8 scheme |
//	  scheme == rsa-merkle: u32 len(N) | N bytes | u32 len(E) | E bytes
//	  scheme == ed25519:    u32 32     | pubkey bytes
//
// Big-endian throughout, matching the rest of the repository's codecs.

// MarshalBinary encodes the public key for distribution to clients.
func (p *PublicKey) MarshalBinary() ([]byte, error) {
	var b8 [8]byte
	var b4 [4]byte
	out := make([]byte, 0, 4+8+8+4+1+4+ed25519.PublicKeySize)
	binary.BigEndian.PutUint32(b4[:], p.Version)
	out = append(out, b4[:]...)
	binary.BigEndian.PutUint64(b8[:], uint64(p.NotBefore))
	out = append(out, b8[:]...)
	binary.BigEndian.PutUint64(b8[:], uint64(p.NotAfter))
	out = append(out, b8[:]...)
	appendBig := func(v *big.Int) {
		vb := v.Bytes()
		binary.BigEndian.PutUint32(b4[:], uint32(len(vb)))
		out = append(out, b4[:]...)
		out = append(out, vb...)
	}
	switch p.Scheme {
	case SchemeRSAFull:
		if p.N == nil || p.E == nil {
			return nil, errors.New("sig: cannot marshal incomplete public key")
		}
		appendBig(p.N)
		appendBig(p.E)
	case SchemeRSAMerkle:
		if p.N == nil || p.E == nil {
			return nil, errors.New("sig: cannot marshal incomplete public key")
		}
		out = append(out, 0, 0, 0, 0, byte(p.Scheme))
		appendBig(p.N)
		appendBig(p.E)
	case SchemeEd25519:
		if len(p.Ed) != ed25519.PublicKeySize {
			return nil, errors.New("sig: cannot marshal incomplete public key")
		}
		out = append(out, 0, 0, 0, 0, byte(p.Scheme))
		binary.BigEndian.PutUint32(b4[:], uint32(len(p.Ed)))
		out = append(out, b4[:]...)
		out = append(out, p.Ed...)
	default:
		return nil, fmt.Errorf("sig: cannot marshal key with unknown scheme %v", p.Scheme)
	}
	return out, nil
}

// UnmarshalBinary decodes a public key produced by MarshalBinary. Blobs
// naming a scheme this build does not know are rejected — a client must
// never guess at a verification algorithm.
func (p *PublicKey) UnmarshalBinary(data []byte) error {
	const fixed = 4 + 8 + 8
	if len(data) < fixed+4 {
		return errors.New("sig: public key blob truncated")
	}
	version := binary.BigEndian.Uint32(data[0:4])
	notBefore := int64(binary.BigEndian.Uint64(data[4:12]))
	notAfter := int64(binary.BigEndian.Uint64(data[12:20]))
	off := fixed
	readBig := func() (*big.Int, error) {
		if off+4 > len(data) {
			return nil, errors.New("sig: public key blob truncated")
		}
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		off += 4
		if n < 0 || off+n > len(data) {
			return nil, errors.New("sig: public key blob truncated")
		}
		v := new(big.Int).SetBytes(data[off : off+n])
		off += n
		return v, nil
	}
	scheme := SchemeRSAFull
	if binary.BigEndian.Uint32(data[off:off+4]) == 0 {
		// Scheme-tagged layout: zero N-length marker, then the scheme byte.
		if len(data) < off+5 {
			return errors.New("sig: public key blob truncated")
		}
		scheme = Scheme(data[off+4])
		off += 5
		if !scheme.Valid() || scheme == SchemeRSAFull {
			return fmt.Errorf("sig: public key blob names unknown scheme %d", uint8(scheme))
		}
	}
	decoded := PublicKey{
		Scheme:    scheme,
		Version:   version,
		NotBefore: notBefore,
		NotAfter:  notAfter,
		Counters:  p.Counters,
	}
	switch scheme {
	case SchemeRSAFull, SchemeRSAMerkle:
		n, err := readBig()
		if err != nil {
			return err
		}
		e, err := readBig()
		if err != nil {
			return err
		}
		if n.BitLen() < MinBits {
			return fmt.Errorf("sig: unmarshaled modulus too small (%d bits)", n.BitLen())
		}
		if e.Sign() <= 0 {
			return errors.New("sig: unmarshaled exponent not positive")
		}
		decoded.N, decoded.E = n, e
	case SchemeEd25519:
		if off+4 > len(data) {
			return errors.New("sig: public key blob truncated")
		}
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		off += 4
		if n != ed25519.PublicKeySize || off+n > len(data) {
			return errors.New("sig: malformed ed25519 public key blob")
		}
		decoded.Ed = ed25519.PublicKey(append([]byte(nil), data[off:off+n]...))
		off += n
	}
	if off != len(data) {
		return fmt.Errorf("sig: %d trailing bytes in public key blob", len(data)-off)
	}
	*p = decoded
	return nil
}
