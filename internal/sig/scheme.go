package sig

import (
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
)

// Scheme identifies a key's signature scheme AND its commitment mode —
// how the VB-tree's interior digests are authenticated. It travels as
// key metadata: clients resolve a VO's KeyVersion through the trusted
// key registry and derive the verification algorithm from the resolved
// key's scheme, never from attacker-controllable wire bytes (the
// cross-scheme-confusion attack fails precisely because of this).
type Scheme uint8

const (
	// SchemeRSAFull is the paper's original construction: every
	// attribute, tuple and node digest is individually RSA-signed with
	// message recovery (s⁻¹). Keys of this scheme keep byte-identical
	// wire behavior with all previous releases.
	SchemeRSAFull Scheme = iota
	// SchemeRSAMerkle keeps the RSA signer but signs only tree roots:
	// interior node, tuple and attribute "signatures" become raw
	// unsigned digests (hash-only Merkle commitments), and one RSA
	// signature per shard root anchors them all. The root signature is
	// byte-identical to SchemeRSAFull's root signature over the same
	// content, because digest values are mode-independent.
	SchemeRSAMerkle
	// SchemeEd25519 pairs the Merkle commitment mode with an Ed25519
	// signer. Ed25519 has no message recovery, so the root digest is
	// carried in the clear and the signature is verified detached.
	SchemeEd25519
)

// Valid reports whether s names a known scheme.
func (s Scheme) Valid() bool { return s <= SchemeEd25519 }

// Merkle reports whether interior digests are raw Merkle commitments
// (only roots signed) under this scheme.
func (s Scheme) Merkle() bool { return s != SchemeRSAFull }

func (s Scheme) String() string {
	switch s {
	case SchemeRSAFull:
		return "rsa"
	case SchemeRSAMerkle:
		return "rsa-merkle"
	case SchemeEd25519:
		return "ed25519"
	default:
		return fmt.Sprintf("Scheme(%d)", uint8(s))
	}
}

// ParseScheme resolves a scheme name as exposed by the -scheme flags of
// centrald and vbgen.
func ParseScheme(name string) (Scheme, error) {
	switch name {
	case "rsa", "rsa-full", "":
		return SchemeRSAFull, nil
	case "rsa-merkle", "merkle":
		return SchemeRSAMerkle, nil
	case "ed25519":
		return SchemeEd25519, nil
	default:
		return 0, fmt.Errorf("sig: unknown scheme %q (want rsa, rsa-merkle or ed25519)", name)
	}
}

// Signer is the signing surface the central server and the VB-tree
// depend on. *PrivateKey implements it for every scheme; the locksign
// analyzer flags ANY implementation's Sign/MustSign under shard locks.
type Signer interface {
	Sign(payload []byte) (Signature, error)
	MustSign(payload []byte) Signature
	Public() *PublicKey
	Len() int
	Scheme() Scheme
}

var _ Signer = (*PrivateKey)(nil)

// Generate creates a fresh key pair for the given scheme. bits sizes the
// RSA modulus and is ignored for Ed25519 (fixed 256-bit curve keys).
func Generate(scheme Scheme, bits int) (*PrivateKey, error) {
	switch scheme {
	case SchemeRSAFull, SchemeRSAMerkle:
		k, err := GenerateKey(bits)
		if err != nil {
			return nil, err
		}
		k.pub.Scheme = scheme
		return k, nil
	case SchemeEd25519:
		edPub, edPriv, err := ed25519.GenerateKey(rand.Reader)
		if err != nil {
			return nil, fmt.Errorf("sig: generating ed25519 key: %w", err)
		}
		return &PrivateKey{
			pub: PublicKey{Scheme: SchemeEd25519, Ed: edPub},
			ed:  edPriv,
		}, nil
	default:
		return nil, fmt.Errorf("sig: cannot generate key for unknown scheme %v", scheme)
	}
}

// MustGenerate is Generate panicking on error, for tests and tools.
func MustGenerate(scheme Scheme, bits int) *PrivateKey {
	k, err := Generate(scheme, bits)
	if err != nil {
		panic(err)
	}
	return k
}

// WithScheme returns a copy of the key re-tagged with the given scheme.
// Only RSA↔RSA retags are allowed (the key material must fit the
// scheme); it exists so one RSA key can serve both commitment modes —
// the property test pinning Merkle root signatures byte-equal to legacy
// full-sign root signatures depends on identical key material.
func (k *PrivateKey) WithScheme(scheme Scheme) (*PrivateKey, error) {
	if scheme == SchemeEd25519 || k.pub.Scheme == SchemeEd25519 {
		if scheme != k.pub.Scheme {
			return nil, fmt.Errorf("sig: cannot retag %v key as %v", k.pub.Scheme, scheme)
		}
	}
	if !scheme.Valid() {
		return nil, fmt.Errorf("sig: unknown scheme %v", scheme)
	}
	c := *k
	c.pub.Scheme = scheme
	return &c, nil
}
