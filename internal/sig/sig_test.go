package sig

import (
	"bytes"
	"math/big"
	"sync"
	"testing"
	"testing/quick"

	"edgeauth/internal/digest"
)

// testKeyBits keeps unit tests fast; the padding and algebra are size-
// independent.
const testKeyBits = 512

var (
	keyOnce sync.Once
	key     *PrivateKey
)

func testKey(t testing.TB) *PrivateKey {
	t.Helper()
	keyOnce.Do(func() { key = MustGenerateKey(testKeyBits) })
	return key
}

func TestGenerateKeyValidation(t *testing.T) {
	if _, err := GenerateKey(64); err == nil {
		t.Fatal("GenerateKey accepted a 64-bit modulus")
	}
	k := testKey(t)
	if got := k.Len(); got != testKeyBits/8 {
		t.Fatalf("Len = %d, want %d", got, testKeyBits/8)
	}
	if k.Public().N.BitLen() != testKeyBits {
		t.Fatalf("modulus bit length %d, want %d", k.Public().N.BitLen(), testKeyBits)
	}
}

func TestSignRecoverRoundTrip(t *testing.T) {
	k := testKey(t)
	pub := k.Public()
	payloads := [][]byte{
		{},
		{0x00},
		{0xFF},
		[]byte("sixteen-byte-pay"),
		bytes.Repeat([]byte{0xAB}, 16),
		bytes.Repeat([]byte{0x00}, 16), // leading zeros must survive
	}
	for i, p := range payloads {
		s, err := k.Sign(p)
		if err != nil {
			t.Fatalf("payload %d: Sign: %v", i, err)
		}
		if len(s) != k.Len() {
			t.Fatalf("payload %d: signature length %d, want %d", i, len(s), k.Len())
		}
		got, err := pub.Recover(s)
		if err != nil {
			t.Fatalf("payload %d: Recover: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("payload %d: recovered %x, want %x", i, got, p)
		}
	}
}

func TestSignDeterministic(t *testing.T) {
	k := testKey(t)
	p := []byte("determinism-check")
	s1 := k.MustSign(p)
	s2 := k.MustSign(p)
	if !s1.Equal(s2) {
		t.Fatal("signing the same payload twice produced different signatures")
	}
}

func TestRecoverRejectsTampering(t *testing.T) {
	k := testKey(t)
	pub := k.Public()
	s := k.MustSign([]byte("authentic digest"))

	t.Run("flipped byte", func(t *testing.T) {
		bad := s.Clone()
		bad[len(bad)/2] ^= 0x01
		if got, err := pub.Recover(bad); err == nil {
			// Structural padding check makes survival overwhelmingly
			// unlikely; if it ever recovers, it must not equal the original.
			if bytes.Equal(got, []byte("authentic digest")) {
				t.Fatal("tampered signature recovered the original payload")
			}
		}
	})
	t.Run("wrong length", func(t *testing.T) {
		if _, err := pub.Recover(s[:len(s)-1]); err == nil {
			t.Fatal("short signature accepted")
		}
	})
	t.Run("value >= N", func(t *testing.T) {
		bad := make(Signature, pub.Len())
		pub.N.FillBytes(bad)
		if _, err := pub.Recover(bad); err == nil {
			t.Fatal("signature value >= N accepted")
		}
	})
	t.Run("zero signature", func(t *testing.T) {
		if _, err := pub.Recover(make(Signature, pub.Len())); err == nil {
			t.Fatal("all-zero signature accepted")
		}
	})
}

func TestVerify(t *testing.T) {
	k := testKey(t)
	pub := k.Public()
	payload := []byte("verify me")
	s := k.MustSign(payload)
	if err := pub.Verify(s, payload); err != nil {
		t.Fatalf("Verify rejected a valid signature: %v", err)
	}
	if err := pub.Verify(s, []byte("something else")); err == nil {
		t.Fatal("Verify accepted a mismatched payload")
	}
}

func TestPayloadTooLong(t *testing.T) {
	k := testKey(t)
	if _, err := k.Sign(make([]byte, k.Len()-10)); err == nil {
		t.Fatal("Sign accepted a payload that cannot be padded")
	}
}

func TestSignRecoverQuick(t *testing.T) {
	k := testKey(t)
	pub := k.Public()
	f := func(payload []byte) bool {
		if len(payload) > k.Len()-11 {
			payload = payload[:k.Len()-11]
		}
		s, err := k.Sign(payload)
		if err != nil {
			return false
		}
		got, err := pub.Recover(s)
		if err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverCountsOps(t *testing.T) {
	k := testKey(t)
	pub := k.Public()
	var c digest.Counters
	pub.Counters = &c
	s := k.MustSign([]byte("count me"))
	for i := 0; i < 3; i++ {
		if _, err := pub.Recover(s); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Snapshot().RecoverOps; got != 3 {
		t.Fatalf("RecoverOps = %d, want 3", got)
	}
}

func TestValidityWindow(t *testing.T) {
	k := testKey(t)
	k.SetValidity(7, 100, 200)
	pub := k.Public()
	if pub.Version != 7 {
		t.Fatalf("Version = %d, want 7", pub.Version)
	}
	for _, c := range []struct {
		at   int64
		want bool
	}{{50, false}, {100, true}, {150, true}, {200, true}, {201, false}} {
		if got := pub.ValidAt(c.at); got != c.want {
			t.Errorf("ValidAt(%d) = %v, want %v", c.at, got, c.want)
		}
	}
	unbounded := &PublicKey{N: pub.N, E: pub.E}
	if !unbounded.ValidAt(1) || !unbounded.ValidAt(1<<60) {
		t.Error("zero validity window should be unbounded")
	}
}

func TestPublicKeyMarshalRoundTrip(t *testing.T) {
	k := testKey(t)
	k.SetValidity(3, 1000, 2000)
	pub := k.Public()
	blob, err := pub.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got PublicKey
	if err := got.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if got.N.Cmp(pub.N) != 0 || got.E.Cmp(pub.E) != 0 {
		t.Fatal("modulus/exponent did not round-trip")
	}
	if got.Version != 3 || got.NotBefore != 1000 || got.NotAfter != 2000 {
		t.Fatalf("metadata did not round-trip: %+v", got)
	}
	// A key recovered from the wire must verify signatures.
	s := k.MustSign([]byte("wire"))
	if err := got.Verify(s, []byte("wire")); err != nil {
		t.Fatalf("unmarshaled key failed to verify: %v", err)
	}
}

func TestPublicKeyUnmarshalRejectsCorrupt(t *testing.T) {
	k := testKey(t)
	blob, _ := k.Public().MarshalBinary()
	cases := map[string][]byte{
		"empty":     {},
		"truncated": blob[:10],
		"cut N":     blob[:25],
		"trailing":  append(append([]byte{}, blob...), 0xAA),
	}
	for name, b := range cases {
		t.Run(name, func(t *testing.T) {
			var pk PublicKey
			if err := pk.UnmarshalBinary(b); err == nil {
				t.Fatal("corrupt blob accepted")
			}
		})
	}
}

func TestMarshalIncompleteKey(t *testing.T) {
	var pk PublicKey
	if _, err := pk.MarshalBinary(); err == nil {
		t.Fatal("marshaled a key with nil modulus")
	}
}

func TestRegistryResolve(t *testing.T) {
	r := NewRegistry()
	k1 := testKey(t)
	pub1 := k1.Public()
	pub1.Version = 1
	pub1.NotBefore, pub1.NotAfter = 0, 1000
	pub2 := k1.Public()
	pub2.Version = 2
	pub2.NotBefore, pub2.NotAfter = 1000, 0
	r.Put(pub1)
	r.Put(pub2)

	if _, err := r.Resolve(1, 500); err != nil {
		t.Errorf("version 1 at t=500 should resolve: %v", err)
	}
	if _, err := r.Resolve(1, 2000); err == nil {
		t.Error("expired key version resolved")
	}
	if _, err := r.Resolve(2, 2000); err != nil {
		t.Errorf("version 2 at t=2000 should resolve: %v", err)
	}
	if _, err := r.Resolve(9, 500); err == nil {
		t.Error("unknown version resolved")
	}
	if got := len(r.Versions()); got != 2 {
		t.Errorf("Versions count = %d, want 2", got)
	}
	if _, ok := r.Get(2); !ok {
		t.Error("Get(2) missed")
	}
}

func TestUnmarshalRejectsWeakKey(t *testing.T) {
	weak := &PublicKey{N: big.NewInt(12345677), E: big.NewInt(3)}
	nb := weak.N.Bytes()
	_ = nb
	blob, err := weak.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var pk PublicKey
	if err := pk.UnmarshalBinary(blob); err == nil {
		t.Fatal("unmarshal accepted a 24-bit modulus")
	}
}

func BenchmarkSign(b *testing.B) {
	k := testKey(b)
	payload := bytes.Repeat([]byte{0x5A}, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := k.Sign(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecover(b *testing.B) {
	k := testKey(b)
	pub := k.Public()
	s := k.MustSign(bytes.Repeat([]byte{0x5A}, 16))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := pub.Recover(s); err != nil {
			b.Fatal(err)
		}
	}
}
