// Package sig implements the digital-signature scheme s / s⁻¹ of the
// VB-tree paper: signing with the central DBMS's private key, and
// *recovery* of the signed payload with the public key.
//
// The paper's verification protocol (formulas (1)–(5)) requires signatures
// with message recovery — the client "decrypts" each signed digest with the
// public key to obtain the unsigned digest, then combines the recovered
// digests with the commutative hash. We therefore implement RSA directly on
// math/big with deterministic PKCS#1 v1.5-style type-01 padding, so that
//
//	Recover(Sign(d)) = d
//
// holds exactly and the recovered payload's padding structure is checked on
// the way out. Signing uses the Chinese Remainder Theorem for speed; the
// paper notes (citing Rivest & Shamir) that signature generation is ~10000×
// and verification ~100× the cost of a hash — the VB-tree's whole point is
// to keep the number of recoveries small at the client.
//
// Key generation is self-contained (crypto/rand.Prime) so the key size is
// fully configurable: small keys for unit tests and cost benches, larger
// keys for a hardened profile.
package sig

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"

	"edgeauth/internal/digest"
)

// DefaultBits is the default RSA modulus size used when no -bits flag is
// given: 1024 bits matches the paper's 2004-era evaluation so the
// published cost ratios (sign ≈ 10000× a hash, recover ≈ 100×) stay
// representative. It applies only to the RSA schemes; Ed25519 keys have a
// fixed 256-bit curve size and ignore it. Tests and benchmarks may pass
// smaller values down to MinBits.
const DefaultBits = 1024

// MinBits is the smallest modulus this package will generate. It exists to
// keep padding workable (k ≥ payload + 11), not as a security floor.
const MinBits = 256

var (
	// ErrBadSignature is returned when a signature fails structural
	// validation during recovery (wrong length, bad padding, value ≥ N).
	ErrBadSignature = errors.New("sig: invalid signature")
	// ErrPayloadTooLong is returned when the payload cannot fit the
	// modulus with minimum padding.
	ErrPayloadTooLong = errors.New("sig: payload too long for modulus")
	// ErrNoRecovery is returned by Recover on schemes without message
	// recovery (Ed25519): the payload must travel in the clear and be
	// checked with Verify instead.
	ErrNoRecovery = errors.New("sig: scheme does not support message recovery")
)

// Signature is a raw signature: big-endian and exactly the modulus
// length for the RSA schemes, ed25519.SignatureSize for Ed25519. Under a
// Merkle scheme, interior tree positions store raw digest.Value bytes in
// Signature-typed slots — only roots hold real signatures.
type Signature []byte

// Clone returns an independent copy of s.
func (s Signature) Clone() Signature {
	c := make(Signature, len(s))
	copy(c, s)
	return c
}

// Equal reports byte equality.
func (s Signature) Equal(o Signature) bool { return bytes.Equal(s, o) }

// PublicKey verifies/recovers signatures. Version and the validity window
// implement the paper's §3.4 key-rotation scheme for delayed update
// broadcast: edge servers cannot masquerade stale data signed under an
// expired key, because clients check the key version's validity period.
type PublicKey struct {
	N *big.Int // modulus (RSA schemes)
	E *big.Int // public exponent (RSA schemes)

	// Scheme selects the signature algorithm and commitment mode. The
	// zero value is SchemeRSAFull, so keys from older releases keep
	// byte-identical behavior. Clients MUST take the scheme from the key
	// they resolved out of their trusted registry — never from wire
	// metadata — so a lying edge can only cause verification failure.
	Scheme Scheme
	// Ed is the Ed25519 public key when Scheme is SchemeEd25519.
	Ed ed25519.PublicKey

	// Version identifies the key generation; bumped when the central
	// server rotates keys after propagating updates.
	Version uint32
	// NotBefore/NotAfter bound the validity period (Unix seconds).
	// Zero values mean unbounded.
	NotBefore int64
	NotAfter  int64

	// Counters, when non-nil, has RecoverOps bumped on every Recover —
	// the Cost_s accounting of the paper's §4.3.
	Counters *digest.Counters
}

// Len returns the signature length in bytes: the modulus length for RSA
// schemes, ed25519.SignatureSize for Ed25519.
func (p *PublicKey) Len() int {
	if p.Scheme == SchemeEd25519 {
		return ed25519.SignatureSize
	}
	if p.N == nil {
		return 0
	}
	return (p.N.BitLen() + 7) / 8
}

// ValidAt reports whether the key's validity window covers the given Unix
// time.
func (p *PublicKey) ValidAt(unix int64) bool {
	if p.NotBefore != 0 && unix < p.NotBefore {
		return false
	}
	if p.NotAfter != 0 && unix > p.NotAfter {
		return false
	}
	return true
}

// PrivateKey signs digests. It retains CRT precomputation for fast signing.
type PrivateKey struct {
	pub  PublicKey
	d    *big.Int // private exponent
	p, q *big.Int // prime factors
	dp   *big.Int // d mod (p-1)
	dq   *big.Int // d mod (q-1)
	qinv *big.Int // q⁻¹ mod p

	// ed is the Ed25519 private key when pub.Scheme is SchemeEd25519.
	ed ed25519.PrivateKey

	// counters, when non-nil, has SignOps bumped on every Sign — the
	// server-side cost accounting used by the batched-write tests to prove
	// how many RSA signatures a commit actually spent.
	counters *digest.Counters
}

// SetCounters installs (or clears, with nil) the sign-op counter sink.
func (k *PrivateKey) SetCounters(c *digest.Counters) { k.counters = c }

// Public returns the public half of the key. The returned value shares the
// modulus but carries its own Counters slot.
func (k *PrivateKey) Public() *PublicKey {
	p := k.pub
	return &p
}

// Len returns the signature length in bytes.
func (k *PrivateKey) Len() int { return k.pub.Len() }

// Scheme returns the key's signature scheme.
func (k *PrivateKey) Scheme() Scheme { return k.pub.Scheme }

// SetValidity stamps the key pair's version and validity window (paper
// §3.4: "the central server can include the timestamp or version number in
// its public key").
func (k *PrivateKey) SetValidity(version uint32, notBefore, notAfter int64) {
	k.pub.Version = version
	k.pub.NotBefore = notBefore
	k.pub.NotAfter = notAfter
}

// GenerateKey creates a fresh RSA key pair with the given modulus size.
func GenerateKey(bits int) (*PrivateKey, error) {
	if bits < MinBits {
		return nil, fmt.Errorf("sig: key size %d below minimum %d", bits, MinBits)
	}
	e := big.NewInt(65537)
	one := big.NewInt(1)
	for {
		p, err := rand.Prime(rand.Reader, bits/2)
		if err != nil {
			return nil, fmt.Errorf("sig: generating prime: %w", err)
		}
		q, err := rand.Prime(rand.Reader, bits-bits/2)
		if err != nil {
			return nil, fmt.Errorf("sig: generating prime: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		phi := new(big.Int).Mul(pm1, qm1)
		d := new(big.Int).ModInverse(e, phi)
		if d == nil {
			continue // e not coprime to phi; re-draw primes
		}
		k := &PrivateKey{
			pub:  PublicKey{N: n, E: new(big.Int).Set(e)},
			d:    d,
			p:    p,
			q:    q,
			dp:   new(big.Int).Mod(d, pm1),
			dq:   new(big.Int).Mod(d, qm1),
			qinv: new(big.Int).ModInverse(q, p),
		}
		if k.qinv == nil {
			continue
		}
		return k, nil
	}
}

// MustGenerateKey is GenerateKey panicking on error, for tests and tools.
func MustGenerateKey(bits int) *PrivateKey {
	k, err := GenerateKey(bits)
	if err != nil {
		panic(err)
	}
	return k
}

// pad builds the deterministic type-01 encoding
//
//	0x00 0x01 0xFF…0xFF 0x00 payload
//
// of exactly k bytes. At least 8 bytes of 0xFF are required, mirroring
// PKCS#1 v1.5.
func pad(payload []byte, k int) ([]byte, error) {
	if len(payload) > k-11 {
		return nil, ErrPayloadTooLong
	}
	em := make([]byte, k)
	em[0] = 0x00
	em[1] = 0x01
	ffEnd := k - len(payload) - 1
	for i := 2; i < ffEnd; i++ {
		em[i] = 0xFF
	}
	em[ffEnd] = 0x00
	copy(em[ffEnd+1:], payload)
	return em, nil
}

// unpad validates the type-01 structure and extracts the payload.
func unpad(em []byte) ([]byte, error) {
	if len(em) < 11 || em[0] != 0x00 || em[1] != 0x01 {
		return nil, ErrBadSignature
	}
	i := 2
	for i < len(em) && em[i] == 0xFF {
		i++
	}
	if i < 2+8 || i >= len(em) || em[i] != 0x00 {
		return nil, ErrBadSignature
	}
	return em[i+1:], nil
}

// Sign produces the signature over payload: s(payload) = pad(payload)^d
// mod N for the RSA schemes, a detached Ed25519 signature otherwise.
// The payload is normally an unsigned digest (digest.Value).
func (k *PrivateKey) Sign(payload []byte) (Signature, error) {
	if k.counters != nil {
		k.counters.SignOps.Add(1)
	}
	if k.pub.Scheme == SchemeEd25519 {
		if k.ed == nil {
			return nil, errors.New("sig: ed25519 key has no private half")
		}
		return Signature(ed25519.Sign(k.ed, payload)), nil
	}
	em, err := pad(payload, k.Len())
	if err != nil {
		return nil, err
	}
	m := new(big.Int).SetBytes(em)
	c := k.crtExp(m)
	out := make(Signature, k.Len())
	c.FillBytes(out)
	return out, nil
}

// MustSign is Sign panicking on error, for contexts where the payload
// length is known valid.
func (k *PrivateKey) MustSign(payload []byte) Signature {
	s, err := k.Sign(payload)
	if err != nil {
		panic(err)
	}
	return s
}

// crtExp computes m^d mod N with the Chinese Remainder Theorem.
func (k *PrivateKey) crtExp(m *big.Int) *big.Int {
	m1 := new(big.Int).Exp(m, k.dp, k.p)
	m2 := new(big.Int).Exp(m, k.dq, k.q)
	h := new(big.Int).Sub(m1, m2)
	h.Mul(h, k.qinv)
	h.Mod(h, k.p)
	res := new(big.Int).Mul(h, k.q)
	res.Add(res, m2)
	return res
}

// Recover implements s⁻¹: it raises the signature to the public exponent,
// validates the padding structure, and returns the embedded payload. Any
// tampering with the signature bytes invalidates the padding with
// overwhelming probability and yields ErrBadSignature.
func (p *PublicKey) Recover(s Signature) ([]byte, error) {
	if p.Scheme == SchemeEd25519 {
		return nil, ErrNoRecovery
	}
	if p.Counters != nil {
		p.Counters.RecoverOps.Add(1)
	}
	if len(s) != p.Len() {
		return nil, ErrBadSignature
	}
	c := new(big.Int).SetBytes(s)
	if c.Cmp(p.N) >= 0 {
		return nil, ErrBadSignature
	}
	m := c.Exp(c, p.E, p.N)
	em := make([]byte, p.Len())
	m.FillBytes(em)
	payload, err := unpad(em)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(payload))
	copy(out, payload)
	return out, nil
}

// Verify checks that s authenticates want: for RSA schemes it recovers
// the payload and compares; for Ed25519 it runs a detached verification.
// Both count one RecoverOp — the client-side Cost_s unit of §4.3.
func (p *PublicKey) Verify(s Signature, want []byte) error {
	if p.Scheme == SchemeEd25519 {
		if p.Counters != nil {
			p.Counters.RecoverOps.Add(1)
		}
		if p.Ed == nil || len(s) != ed25519.SignatureSize {
			return ErrBadSignature
		}
		if !ed25519.Verify(p.Ed, want, []byte(s)) {
			return ErrBadSignature
		}
		return nil
	}
	got, err := p.Recover(s)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, want) {
		return ErrBadSignature
	}
	return nil
}
