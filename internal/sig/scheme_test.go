package sig

import (
	"bytes"
	"testing"
	"testing/quick"
)

// TestSchemeMarshalRoundTrip pins the wire format across every scheme
// and a spread of versions/validity windows: marshal → unmarshal must
// reproduce the key, and the decoded key must verify signatures minted
// by the original private key.
func TestSchemeMarshalRoundTrip(t *testing.T) {
	payload := []byte("round-trip payload")
	for _, scheme := range []Scheme{SchemeRSAFull, SchemeRSAMerkle, SchemeEd25519} {
		t.Run(scheme.String(), func(t *testing.T) {
			for _, version := range []uint32{0, 1, 7, 1 << 20} {
				k := MustGenerate(scheme, 512)
				k.SetValidity(version, 100, 1<<40)
				blob, err := k.Public().MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				var got PublicKey
				if err := got.UnmarshalBinary(blob); err != nil {
					t.Fatalf("version %d: unmarshal: %v", version, err)
				}
				if got.Scheme != scheme {
					t.Fatalf("scheme round-tripped as %v, want %v", got.Scheme, scheme)
				}
				if got.Version != version || got.NotBefore != 100 || got.NotAfter != 1<<40 {
					t.Fatalf("metadata mangled: %+v", got)
				}
				sg := k.MustSign(payload)
				if err := got.Verify(sg, payload); err != nil {
					t.Fatalf("decoded key rejects a genuine signature: %v", err)
				}
				// And a second encode of the decoded key is byte-identical.
				blob2, err := got.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(blob, blob2) {
					t.Fatal("re-encoding a decoded key changed bytes")
				}
			}
		})
	}
}

// TestRSAFullLayoutIsLegacy pins the compatibility guarantee: an
// rsa-full key's encoding never contains the scheme-tag marker, so old
// decoders read it unchanged, and an rsa-merkle retag of the SAME key
// still decodes on builds that know the tag.
func TestRSAFullLayoutIsLegacy(t *testing.T) {
	k := MustGenerate(SchemeRSAFull, 512)
	blob, err := k.Public().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Legacy layout: bytes 20..24 are len(N), which must be nonzero.
	if blob[20] == 0 && blob[21] == 0 && blob[22] == 0 && blob[23] == 0 {
		t.Fatal("rsa-full key encoded with the scheme-tag marker")
	}
	mk, err := k.WithScheme(SchemeRSAMerkle)
	if err != nil {
		t.Fatal(err)
	}
	mblob, err := mk.Public().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(blob, mblob) {
		t.Fatal("rsa-merkle encoding indistinguishable from rsa-full")
	}
	var got PublicKey
	if err := got.UnmarshalBinary(mblob); err != nil {
		t.Fatal(err)
	}
	if got.Scheme != SchemeRSAMerkle || got.N.Cmp(k.Public().N) != 0 {
		t.Fatalf("retagged key mangled: scheme %v", got.Scheme)
	}
}

// TestUnmarshalRejectsUnknownScheme: a blob naming a scheme byte this
// build does not know must be rejected, never guessed at.
func TestUnmarshalRejectsUnknownScheme(t *testing.T) {
	k := MustGenerate(SchemeEd25519, 0)
	blob, err := k.Public().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// The scheme byte sits right after the 4-byte zero marker at offset 20.
	for _, b := range []byte{3, 77, 255, byte(SchemeRSAFull)} {
		bad := append([]byte(nil), blob...)
		bad[24] = b
		var got PublicKey
		if err := got.UnmarshalBinary(bad); err == nil {
			t.Fatalf("scheme byte %d accepted", b)
		}
	}
}

// TestUnmarshalTruncatedSchemeTagged walks every prefix of a
// scheme-tagged blob through the decoder: none may panic or succeed.
func TestUnmarshalTruncatedSchemeTagged(t *testing.T) {
	for _, scheme := range []Scheme{SchemeRSAMerkle, SchemeEd25519} {
		k := MustGenerate(scheme, 512)
		blob, err := k.Public().MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < len(blob); n++ {
			var got PublicKey
			if err := got.UnmarshalBinary(blob[:n]); err == nil {
				t.Fatalf("%v: truncation to %d bytes accepted", scheme, n)
			}
		}
	}
}

// TestRegistryMixedSchemes: one registry holding RSA and Ed25519 keys
// under different versions resolves each to the right scheme — the
// rotation path a central switching signers mid-deployment exercises.
func TestRegistryMixedSchemes(t *testing.T) {
	rsa := MustGenerate(SchemeRSAMerkle, 512)
	rsa.SetValidity(1, 0, 1<<40)
	ed := MustGenerate(SchemeEd25519, 0)
	ed.SetValidity(2, 0, 1<<40)
	reg := NewRegistry()
	reg.Put(rsa.Public())
	reg.Put(ed.Public())
	payload := []byte("mixed registry payload")
	for _, tc := range []struct {
		version uint32
		key     *PrivateKey
		scheme  Scheme
	}{{1, rsa, SchemeRSAMerkle}, {2, ed, SchemeEd25519}} {
		pub, err := reg.Resolve(tc.version, 50)
		if err != nil {
			t.Fatalf("resolve v%d: %v", tc.version, err)
		}
		if pub.Scheme != tc.scheme {
			t.Fatalf("v%d resolved to scheme %v, want %v", tc.version, pub.Scheme, tc.scheme)
		}
		if err := pub.Verify(tc.key.MustSign(payload), payload); err != nil {
			t.Fatalf("v%d: %v", tc.version, err)
		}
		// Cross-wiring must fail: the other key's signature never verifies.
		other := rsa
		if tc.key == rsa {
			other = ed
		}
		if err := pub.Verify(other.MustSign(payload), payload); err == nil {
			t.Fatalf("v%d accepted a signature from the other scheme's key", tc.version)
		}
	}
}

// TestWithSchemeConstraints: RSA↔RSA retags share key material;
// Ed25519 retags in either direction are rejected.
func TestWithSchemeConstraints(t *testing.T) {
	rsa := MustGenerate(SchemeRSAFull, 512)
	mk, err := rsa.WithScheme(SchemeRSAMerkle)
	if err != nil {
		t.Fatal(err)
	}
	if mk.Scheme() != SchemeRSAMerkle || mk.Public().N.Cmp(rsa.Public().N) != 0 {
		t.Fatal("retag changed key material")
	}
	// Same payload, same key material → byte-identical signatures: the
	// invariant the Merkle root-signature property test builds on.
	payload := []byte("shared material")
	if !rsa.MustSign(payload).Equal(mk.MustSign(payload)) {
		t.Fatal("retagged key signs differently")
	}
	if _, err := rsa.WithScheme(SchemeEd25519); err == nil {
		t.Fatal("rsa→ed25519 retag accepted")
	}
	ed := MustGenerate(SchemeEd25519, 0)
	if _, err := ed.WithScheme(SchemeRSAFull); err == nil {
		t.Fatal("ed25519→rsa retag accepted")
	}
	if back, err := ed.WithScheme(SchemeEd25519); err != nil || back.Scheme() != SchemeEd25519 {
		t.Fatalf("identity retag failed: %v", err)
	}
}

// TestEd25519SignVerifyQuick drives random payloads through the
// detached-signature path.
func TestEd25519SignVerifyQuick(t *testing.T) {
	k := MustGenerate(SchemeEd25519, 0)
	pub := k.Public()
	f := func(payload []byte) bool {
		sg, err := k.Sign(payload)
		if err != nil {
			return false
		}
		if len(sg) != pub.Len() {
			return false
		}
		if err := pub.Verify(sg, payload); err != nil {
			return false
		}
		// Any bit flip must invalidate it.
		bad := sg.Clone()
		bad[0] ^= 1
		return pub.Verify(bad, payload) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestParseSchemeNames pins the flag vocabulary shared by centrald,
// vbgen and bench.
func TestParseSchemeNames(t *testing.T) {
	for name, want := range map[string]Scheme{
		"":           SchemeRSAFull,
		"rsa":        SchemeRSAFull,
		"rsa-full":   SchemeRSAFull,
		"rsa-merkle": SchemeRSAMerkle,
		"merkle":     SchemeRSAMerkle,
		"ed25519":    SchemeEd25519,
	} {
		got, err := ParseScheme(name)
		if err != nil || got != want {
			t.Fatalf("ParseScheme(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseScheme("dsa"); err == nil {
		t.Fatal("unknown scheme name accepted")
	}
	for _, s := range []Scheme{SchemeRSAFull, SchemeRSAMerkle, SchemeEd25519} {
		back, err := ParseScheme(s.String())
		if err != nil || back != s {
			t.Fatalf("String/Parse not inverse for %v", s)
		}
	}
}
