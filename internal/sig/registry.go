package sig

import (
	"fmt"
	"sync"
)

// Registry holds the public keys a client trusts, by version. It models the
// paper's "well-known location" publishing the validity period of each
// public key (§3.4): when the central server rotates keys after a delayed
// update broadcast, clients resolve the key version carried in a VO and
// reject versions whose validity window has closed — so an edge server
// cannot masquerade out-of-date data signed under an old private key.
type Registry struct {
	mu   sync.RWMutex
	keys map[uint32]*PublicKey
}

// NewRegistry returns an empty trusted-key registry.
func NewRegistry() *Registry {
	return &Registry{keys: make(map[uint32]*PublicKey)}
}

// Put registers (or replaces) the key for its version.
func (r *Registry) Put(k *PublicKey) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.keys[k.Version] = k
}

// Get resolves a key version without checking validity.
func (r *Registry) Get(version uint32) (*PublicKey, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	k, ok := r.keys[version]
	return k, ok
}

// Resolve returns the key for version if it exists and its validity window
// covers atUnix.
func (r *Registry) Resolve(version uint32, atUnix int64) (*PublicKey, error) {
	r.mu.RLock()
	k, ok := r.keys[version]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sig: unknown key version %d", version)
	}
	if !k.ValidAt(atUnix) {
		return nil, fmt.Errorf("sig: key version %d not valid at %d (window [%d,%d])",
			version, atUnix, k.NotBefore, k.NotAfter)
	}
	return k, nil
}

// Versions returns the registered versions in unspecified order.
func (r *Registry) Versions() []uint32 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]uint32, 0, len(r.keys))
	for v := range r.keys {
		out = append(out, v)
	}
	return out
}
