package edge

import (
	"context"
	"testing"

	"edgeauth/internal/central"
	"edgeauth/internal/sig"
	"edgeauth/internal/storage"
)

// Regression tests for the snapshot trust gap: the edge verified deltas
// (verifyDelta) and shard maps (fetchVerifiedMap) but installed pulled
// snapshots without any signature check, so a compromised network path
// could seed a replica with pages the central never signed. The pull
// paths now anchor every snapshot before install (verifySnapshot) and
// cross-check each aligned store's root signature against the signed
// map it is published with (verifyAlignedStores).

func TestVerifySnapshotRejectsForgedRootSig(t *testing.T) {
	ctx := context.Background()
	srv, addr := startCentral(t, 60)
	eg := New(addr)
	t.Cleanup(func() { eg.Close() })
	// A genuine pull passes through verifySnapshot end to end.
	if err := eg.PullAll(ctx); err != nil {
		t.Fatal(err)
	}
	snap, err := srv.Snapshot("items")
	if err != nil {
		t.Fatal(err)
	}
	if err := eg.verifySnapshot(ctx, snap, nil); err != nil {
		t.Fatalf("genuine snapshot rejected: %v", err)
	}
	forged := *snap
	forged.RootSig = append([]byte(nil), snap.RootSig...)
	forged.RootSig[0] ^= 0x40
	if err := eg.verifySnapshot(ctx, &forged, nil); err == nil {
		t.Fatal("snapshot with a tampered root signature accepted")
	}
}

func TestVerifySnapshotHonorsPinnedDigest(t *testing.T) {
	ctx := context.Background()
	srv, addr := startCentral(t, 60)
	eg := New(addr)
	t.Cleanup(func() { eg.Close() })
	if err := eg.PullAll(ctx); err != nil {
		t.Fatal(err)
	}
	snap, err := srv.Snapshot("items")
	if err != nil {
		t.Fatal(err)
	}
	u, err := srv.PublicKey().Recover(sig.Signature(snap.RootSig))
	if err != nil {
		t.Fatal(err)
	}
	if err := eg.verifySnapshot(ctx, snap, u); err != nil {
		t.Fatalf("snapshot rejected against its own pinned digest: %v", err)
	}
	wrong := append([]byte(nil), u...)
	wrong[0] ^= 1
	if err := eg.verifySnapshot(ctx, snap, wrong); err == nil {
		t.Fatal("snapshot accepted against a different pinned digest")
	}
}

func TestVerifyAlignedStoresBindsStoresToMap(t *testing.T) {
	ctx := context.Background()
	_, addr := startCentralOpts(t, 200, central.Options{PageSize: 1024, Shards: 2})
	eg := New(addr)
	t.Cleanup(func() { eg.Close() })
	if err := eg.PullAll(ctx); err != nil {
		t.Fatal(err)
	}
	set := eg.replica("items").set.Load()
	stores := make([]*storage.PageStore, len(set.shards))
	for i, sr := range set.shards {
		stores[i] = sr.store
	}
	if err := eg.verifyAlignedStores(ctx, set.smap, stores); err != nil {
		t.Fatalf("genuine aligned stores rejected: %v", err)
	}
	// A map pinning a different root digest for shard 0 must be refused:
	// publishing it would pair signed routing metadata with shard data
	// the central never vouched for.
	d := append([]byte(nil), set.smap.Map.Shards[0].RootDigest...)
	d[0] ^= 1
	tampered := set.smap.Clone()
	tampered.Map.Shards[0].RootDigest = d
	if err := eg.verifyAlignedStores(ctx, tampered, stores); err == nil {
		t.Fatal("stores accepted against a map pinning a different root digest")
	}
}
