package edge

import (
	"context"
	"sync"
	"testing"

	"edgeauth/internal/central"
	"edgeauth/internal/schema"
)

// TestPeerFanoutStress is the tentpole's dozens-of-edges-on-one-box
// check: a 2-tier topology (2 serving edges on the central, the rest
// fanned out behind them) converges after a batch commit with central
// egress payload bytes bounded by a small multiple of the single-edge
// baseline — the CDN effect — and every scatter-gather client query
// against the peer-fed edges verifies.
func TestPeerFanoutStress(t *testing.T) {
	edges := 24
	if testing.Short() {
		edges = 8
	}
	const tier1Count = 2
	ctx := context.Background()
	srv, centralAddr := startCentralOpts(t, 300, central.Options{PageSize: 1024, Shards: 2})

	commitBatch := func(lo int64) {
		t.Helper()
		tuples := make([]schema.Tuple, 0, 20)
		for i := int64(0); i < 20; i++ {
			tuples = append(tuples, freshRow(t, lo+i))
		}
		opErrs, err := srv.ApplyBatch("items", tuples)
		if err != nil {
			t.Fatal(err)
		}
		for _, oe := range opErrs {
			if oe != nil {
				t.Fatal(oe)
			}
		}
	}

	// Baseline: one edge pulling directly from the central. Its delta
	// egress for one batch commit is the unit the tier is judged in.
	base := New(centralAddr)
	if err := base.PullAll(ctx); err != nil {
		t.Fatal(err)
	}
	commitBatch(1_000_000)
	preBase := srv.Stats().EgressDeltaBytes
	if st, err := base.Refresh(ctx, "items"); err != nil || st.Mode != "delta" {
		t.Fatalf("baseline refresh: %+v, %v", st, err)
	}
	baseline := srv.Stats().EgressDeltaBytes - preBase
	if baseline == 0 {
		t.Fatal("baseline produced no delta egress")
	}
	base.Close()

	// Build the topology. Tier-1 serves peers and pulls central bulk;
	// tier-2 edges list both tier-1 addresses (alternating preference,
	// so load spreads) and fall back to the central.
	tier1 := make([]*Server, tier1Count)
	tier1Addrs := make([]string, tier1Count)
	for i := range tier1 {
		tier1[i] = NewWithOptions(centralAddr, Options{ServePeers: true})
		if err := tier1[i].PullAll(ctx); err != nil {
			t.Fatal(err)
		}
		tier1Addrs[i] = startEdge(t, tier1[i])
	}
	tier2 := make([]*Server, edges-tier1Count)
	var wg sync.WaitGroup
	errCh := make(chan error, len(tier2))
	for i := range tier2 {
		ups := []string{tier1Addrs[i%2], tier1Addrs[(i+1)%2]}
		eg := NewWithOptions(centralAddr, Options{Upstreams: ups})
		tier2[i] = eg
		t.Cleanup(func() { eg.Close() })
		wg.Add(1)
		go func(eg *Server) {
			defer wg.Done()
			// Bootstrap concurrently: snapshots stream from tier-1.
			errCh <- eg.PullAll(ctx)
		}(tier2[i])
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}

	// The measured round: one batch commit, tier-1 refreshes from the
	// central, tier-2 fans out behind it.
	commitBatch(2_000_000)
	preDelta := srv.Stats().EgressDeltaBytes
	refreshAll := func(egs []*Server) {
		t.Helper()
		var wg sync.WaitGroup
		errs := make(chan error, len(egs))
		for _, eg := range egs {
			wg.Add(1)
			go func(eg *Server) {
				defer wg.Done()
				_, err := eg.Refresh(ctx, "items")
				errs <- err
			}(eg)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	refreshAll(tier1)
	refreshAll(tier2)
	egress := srv.Stats().EgressDeltaBytes - preDelta

	// The CDN bound: central bulk egress for the whole fleet stays
	// within 3× what ONE direct edge costs (tier-1 is two edges; the
	// rest ride the relay cache).
	if egress > 3*baseline {
		t.Fatalf("central delta egress %d bytes for %d edges, want <= 3x single-edge baseline (%d)", egress, edges, 3*baseline)
	}

	// Convergence: every edge reached the central's version.
	want, err := srv.Version("items")
	if err != nil {
		t.Fatal(err)
	}
	for i, eg := range append(append([]*Server{}, tier1...), tier2...) {
		if v, _ := eg.Version("items"); v != want {
			t.Fatalf("edge %d at v%d, central at v%d", i, v, want)
		}
	}

	// 100%% of scatter-gather client queries against peer-fed edges
	// verify, and every commit is visible.
	for i, eg := range tier2 {
		if n := verifiedCount(t, startEdge(t, eg), centralAddr, 1_000_000); n != 40 {
			t.Fatalf("tier-2 edge %d: verified rows = %d, want 40", i, n)
		}
	}

	// And the relays actually carried the fan-out: tier-1 served the
	// bulk the central did not.
	var served uint64
	for _, eg := range tier1 {
		served += eg.Stats().PeerPayloadsServed
	}
	if served == 0 {
		t.Fatal("tier-1 served no peer payloads; the fan-out went to the central")
	}
	t.Logf("fanout: %d edges, baseline %dB, tiered central egress %dB, tier-1 served %d payloads",
		edges, baseline, egress, served)
}
