package edge

import "sync/atomic"

// edgeCounters aggregates the edge server's observable activity; bumped
// on hot paths, read by the Stats snapshot (exposed over expvar by
// edged's -debug-addr).
type edgeCounters struct {
	queriesServed      atomic.Uint64
	voBytes            atomic.Uint64
	refreshesApplied   atomic.Uint64
	deltasApplied      atomic.Uint64
	snapshotsInstalled atomic.Uint64
}

// Stats is a point-in-time snapshot of the edge's counters. The JSON
// field names are the expvar keys.
type Stats struct {
	QueriesServed uint64 `json:"queries_served"`
	// VOBytes is the total verification-object bytes attached to served
	// answers — the paper's communication-overhead metric, live.
	VOBytes            uint64 `json:"vo_bytes"`
	RefreshesApplied   uint64 `json:"refreshes_applied"`
	DeltasApplied      uint64 `json:"deltas_applied"`
	SnapshotsInstalled uint64 `json:"snapshots_installed"`
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	return Stats{
		QueriesServed:      s.stats.queriesServed.Load(),
		VOBytes:            s.stats.voBytes.Load(),
		RefreshesApplied:   s.stats.refreshesApplied.Load(),
		DeltasApplied:      s.stats.deltasApplied.Load(),
		SnapshotsInstalled: s.stats.snapshotsInstalled.Load(),
	}
}
