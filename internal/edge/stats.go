package edge

import "sync/atomic"

// edgeCounters aggregates the edge server's observable activity; bumped
// on hot paths, read by the Stats snapshot (exposed over expvar by
// edged's -debug-addr).
type edgeCounters struct {
	queriesServed      atomic.Uint64
	voBytes            atomic.Uint64
	refreshesApplied   atomic.Uint64
	deltasApplied      atomic.Uint64
	snapshotsInstalled atomic.Uint64
	// reshardsApplied counts partition transitions this edge followed: a
	// new map epoch where carried-over shard stores were re-bound and
	// only the transition's new shards were snapshot-installed.
	reshardsApplied atomic.Uint64

	// Verified-signature cache ledger (see verifySigCached): hits are
	// public-key operations the refresh path skipped.
	sigCacheHits   atomic.Uint64
	sigCacheMisses atomic.Uint64

	// Peer distribution tier: replication payloads split by which side
	// of the tier moved them. Served = this edge acting as an upstream;
	// pulled = this edge refreshing, split peer vs central so the CDN
	// effect (central egress shrinking as peers absorb bulk) is directly
	// observable.
	peerPayloadsServed    atomic.Uint64
	peerBytesServed       atomic.Uint64
	peerPayloadsPulled    atomic.Uint64
	peerBytesPulled       atomic.Uint64
	centralPayloadsPulled atomic.Uint64
	centralBytesPulled    atomic.Uint64
	peerFailovers         atomic.Uint64
}

// Stats is a point-in-time snapshot of the edge's counters. The JSON
// field names are the expvar keys.
type Stats struct {
	QueriesServed uint64 `json:"queries_served"`
	// VOBytes is the total verification-object bytes attached to served
	// answers — the paper's communication-overhead metric, live.
	VOBytes            uint64 `json:"vo_bytes"`
	RefreshesApplied   uint64 `json:"refreshes_applied"`
	DeltasApplied      uint64 `json:"deltas_applied"`
	SnapshotsInstalled uint64 `json:"snapshots_installed"`
	ReshardsApplied    uint64 `json:"reshards_applied"`
	// SigCacheHits/Misses ledger the verified-signature cache on the
	// refresh path: each hit is a signature verification skipped.
	SigCacheHits   uint64 `json:"sig_cache_hits"`
	SigCacheMisses uint64 `json:"sig_cache_misses"`
	// Peer tier counters (zero on edges not participating in the tier).
	PeerPayloadsServed    uint64 `json:"peer_payloads_served"`
	PeerBytesServed       uint64 `json:"peer_bytes_served"`
	PeerPayloadsPulled    uint64 `json:"peer_payloads_pulled"`
	PeerBytesPulled       uint64 `json:"peer_bytes_pulled"`
	CentralPayloadsPulled uint64 `json:"central_payloads_pulled"`
	CentralBytesPulled    uint64 `json:"central_bytes_pulled"`
	// PeerFailovers counts source failures that moved a refresh to the
	// next source (ultimately the central) — the tier's health signal.
	PeerFailovers uint64 `json:"peer_failovers"`
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	return Stats{
		QueriesServed:         s.stats.queriesServed.Load(),
		VOBytes:               s.stats.voBytes.Load(),
		RefreshesApplied:      s.stats.refreshesApplied.Load(),
		DeltasApplied:         s.stats.deltasApplied.Load(),
		SnapshotsInstalled:    s.stats.snapshotsInstalled.Load(),
		ReshardsApplied:       s.stats.reshardsApplied.Load(),
		SigCacheHits:          s.stats.sigCacheHits.Load(),
		SigCacheMisses:        s.stats.sigCacheMisses.Load(),
		PeerPayloadsServed:    s.stats.peerPayloadsServed.Load(),
		PeerBytesServed:       s.stats.peerBytesServed.Load(),
		PeerPayloadsPulled:    s.stats.peerPayloadsPulled.Load(),
		PeerBytesPulled:       s.stats.peerBytesPulled.Load(),
		CentralPayloadsPulled: s.stats.centralPayloadsPulled.Load(),
		CentralBytesPulled:    s.stats.centralBytesPulled.Load(),
		PeerFailovers:         s.stats.peerFailovers.Load(),
	}
}
