package edge

import (
	"context"
	"testing"

	"edgeauth/internal/central"
	"edgeauth/internal/client"
	"edgeauth/internal/query"
	"edgeauth/internal/schema"
)

// TestRefreshFollowsSplitWithoutRepull is the edge half of the online
// resharding contract: when the central splits a shard, the next
// refresh tick re-binds the unaffected shards' stores against the new
// signed map (no re-transfer) and snapshot-installs only the two
// shards the split created. The replica is never flagged diverged, so
// there is no client-visible stale-replica window.
func TestRefreshFollowsSplitWithoutRepull(t *testing.T) {
	ctx := context.Background()
	srv, centralAddr := startCentralOpts(t, 400, central.Options{PageSize: 1024, Shards: 4})
	eg := New(centralAddr)
	t.Cleanup(func() { eg.Close() })
	if err := eg.PullAll(ctx); err != nil {
		t.Fatal(err)
	}
	edgeAddr := startEdge(t, eg)
	cl, err := client.Dial(ctx, client.Config{EdgeAddr: edgeAddr, CentralAddr: centralAddr})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.FetchTrustedKey(ctx); err != nil {
		t.Fatal(err)
	}

	base := eg.Stats()
	if _, err := srv.SplitShard(ctx, "items", 0, nil); err != nil {
		t.Fatal(err)
	}
	st, err := eg.Refresh(ctx, "items")
	if err != nil {
		t.Fatalf("refresh across a split: %v", err)
	}
	if st.Mode != "snapshot" {
		t.Fatalf("refresh mode = %q, want snapshot (new shards installed)", st.Mode)
	}
	if n, _ := eg.NumShards("items"); n != 5 {
		t.Fatalf("edge serves %d shards after split, want 5", n)
	}
	rep := eg.replica("items")
	if rep.diverged.Load() {
		t.Fatal("split flagged the replica diverged; carried shards must re-bind, not invalidate")
	}
	after := eg.Stats()
	if got := after.ReshardsApplied - base.ReshardsApplied; got != 1 {
		t.Fatalf("reshards_applied advanced by %d, want 1", got)
	}
	// Only the split's two children were transferred; the three
	// unaffected shards carried their stores over untouched.
	if got := after.SnapshotsInstalled - base.SnapshotsInstalled; got != 2 {
		t.Fatalf("split installed %d snapshots, want exactly the 2 new shards", got)
	}

	// The published set is internally consistent: map pins == stores.
	set := rep.set.Load()
	if got := set.smap.Map.MapEpoch; got != 2 {
		t.Fatalf("published map epoch %d, want 2", got)
	}
	for i, sr := range set.shards {
		if set.smap.Map.Shards[i].Version != sr.state.Version {
			t.Fatalf("shard %d: map pins v%d, store at v%d", i, set.smap.Map.Shards[i].Version, sr.state.Version)
		}
	}

	// A verified scatter-gather over the edge still sees every row.
	res, err := cl.Query(ctx, "items", []query.Predicate{
		{Column: "id", Op: query.OpGE, Value: schema.Int64(0)},
	}, nil)
	if err != nil {
		t.Fatalf("verified query after split: %v", err)
	}
	if len(res.Result.Tuples) != 400 {
		t.Fatalf("post-split scan returned %d tuples, want 400", len(res.Result.Tuples))
	}

	// Merge the pair back: one new shard snapshot, everything else
	// carried, still no divergence.
	mid := eg.Stats()
	if _, err := srv.MergeShards(ctx, "items", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := eg.Refresh(ctx, "items"); err != nil {
		t.Fatalf("refresh across a merge: %v", err)
	}
	if n, _ := eg.NumShards("items"); n != 4 {
		t.Fatalf("edge serves %d shards after merge, want 4", n)
	}
	if rep.diverged.Load() {
		t.Fatal("merge flagged the replica diverged")
	}
	end := eg.Stats()
	if got := end.SnapshotsInstalled - mid.SnapshotsInstalled; got != 1 {
		t.Fatalf("merge installed %d snapshots, want exactly the 1 merged shard", got)
	}

	// Ordinary incremental refresh still works on the post-transition
	// partition: one insert ships one shard delta.
	if err := srv.Insert("items", freshRow(t, 500_000)); err != nil {
		t.Fatal(err)
	}
	st, err = eg.Refresh(ctx, "items")
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "delta" || st.ShardsRefreshed != 1 {
		t.Fatalf("post-reshard refresh: mode=%q shards=%d, want delta/1", st.Mode, st.ShardsRefreshed)
	}
}
