package edge

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"edgeauth/internal/central"
	"edgeauth/internal/schema"
	"edgeauth/internal/vbtree"
	"edgeauth/internal/verify"
)

// TestQueriesVerifyUnderConcurrentRefresh is the snapshot-isolation proof
// (run with -race): query goroutines hammer a replica with zero lock
// acquisitions on the query path while a refresher continuously commits
// updates at the central server and applies signed deltas to the same
// replica. Every result must verify — tamper-free and complete against
// the signed digests — meaning no query ever observed a half-applied
// delta, and the final state must reflect every committed update.
func TestQueriesVerifyUnderConcurrentRefresh(t *testing.T) {
	ctx := context.Background()
	srv, centralAddr := startCentralOpts(t, 300, central.Options{PageSize: 1024})
	eg := New(centralAddr)
	if err := eg.PullAll(ctx); err != nil {
		t.Fatal(err)
	}
	sch, err := eg.Schema("items")
	if err != nil {
		t.Fatal(err)
	}
	ver := &verify.Verifier{Key: srv.PublicKey(), Acc: srv.Accumulator(), Schema: sch}

	const queryWorkers = 8
	const refreshes = 30
	done := make(chan struct{})
	errCh := make(chan error, queryWorkers)
	var queries atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < queryWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				lo := schema.Int64(int64((w*37 + i) % 250))
				hi := schema.Int64(lo.I + 25)
				rs, w2, err := eg.RunQuery(ctx, "items", vbtree.Query{Lo: &lo, Hi: &hi})
				if err != nil {
					errCh <- fmt.Errorf("query during refresh: %w", err)
					return
				}
				if err := ver.Verify(rs, w2); err != nil {
					errCh <- fmt.Errorf("result failed verification during refresh (torn snapshot?): %w", err)
					return
				}
				queries.Add(1)
			}
		}(w)
	}

	// The refresher races the queries: commit at the central, apply the
	// signed delta to the replica. Deletes are mixed in so refreshes
	// rewrite existing pages, not just append.
	var refreshErr error
	for i := 0; i < refreshes && refreshErr == nil; i++ {
		if err := srv.Insert("items", freshRow(t, int64(100_000+i))); err != nil {
			refreshErr = err
			break
		}
		if i%5 == 4 {
			lo := schema.Int64(int64(i * 7 % 200))
			if _, err := srv.DeleteRange("items", &lo, &lo); err != nil {
				refreshErr = err
				break
			}
		}
		st, err := eg.Refresh(ctx, "items")
		if err != nil {
			refreshErr = err
			break
		}
		if st.Mode != "delta" {
			refreshErr = fmt.Errorf("refresh %d fell back to %q", i, st.Mode)
		}
	}
	close(done)
	wg.Wait()
	if refreshErr != nil {
		t.Fatal(refreshErr)
	}
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if queries.Load() == 0 {
		t.Fatal("no queries completed during the refresh storm")
	}
	t.Logf("%d verified queries raced %d delta refreshes", queries.Load(), refreshes)

	// The replica converged on the full committed history.
	wantV, err := srv.Version("items")
	if err != nil {
		t.Fatal(err)
	}
	gotV, err := eg.Version("items")
	if err != nil {
		t.Fatal(err)
	}
	if gotV != wantV {
		t.Fatalf("replica at v%d, central at v%d", gotV, wantV)
	}
	lo := schema.Int64(100_000)
	rs, w2, err := eg.RunQuery(ctx, "items", vbtree.Query{Lo: &lo})
	if err != nil {
		t.Fatal(err)
	}
	if err := ver.Verify(rs, w2); err != nil {
		t.Fatal(err)
	}
	if len(rs.Tuples) != refreshes {
		t.Fatalf("final state has %d inserted rows, want %d", len(rs.Tuples), refreshes)
	}
}

// TestRunQueryHonoursContext proves the satellite: a cancelled context
// stops the traversal instead of completing the query.
func TestRunQueryHonoursContext(t *testing.T) {
	_, centralAddr := startCentralOpts(t, 100, central.Options{PageSize: 1024})
	eg := New(centralAddr)
	if err := eg.PullAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := eg.RunQuery(ctx, "items", vbtree.Query{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("query with cancelled ctx returned %v, want context.Canceled", err)
	}
	// And an un-cancelled context still works.
	if _, _, err := eg.RunQuery(context.Background(), "items", vbtree.Query{}); err != nil {
		t.Fatal(err)
	}
}

// TestOldSnapshotsDrainAndRecycle checks that a replica's superseded
// versions are released back to the store once the last query pin drops:
// refresh N times with no readers, and the store must not accumulate one
// full page-set allocation per version.
func TestOldSnapshotsDrainAndRecycle(t *testing.T) {
	ctx := context.Background()
	srv, centralAddr := startCentralOpts(t, 200, central.Options{PageSize: 1024})
	eg := New(centralAddr)
	if err := eg.PullAll(ctx); err != nil {
		t.Fatal(err)
	}
	rep := eg.replica("items")
	for i := 0; i < 10; i++ {
		if err := srv.Insert("items", freshRow(t, int64(200_000+i))); err != nil {
			t.Fatal(err)
		}
		if _, err := eg.Refresh(ctx, "items"); err != nil {
			t.Fatal(err)
		}
	}
	allocated, recycled := rep.set.Load().shards[0].store.Stats()
	if recycled == 0 {
		t.Fatalf("10 unobserved refreshes recycled no buffers (allocated %d)", allocated)
	}
	t.Logf("after 10 refreshes: %d buffers allocated, %d recycled", allocated, recycled)
}
