package edge

import (
	"context"
	"testing"

	"edgeauth/internal/central"
	"edgeauth/internal/wire"
)

// TestShardedRefreshAndPull covers the per-shard replication path: a
// sharded central replicates shard by shard, a commit ships only the
// touched shard's delta, and the published set's map always pins
// exactly the shard versions it is served with.
func TestShardedRefreshAndPull(t *testing.T) {
	ctx := context.Background()
	srv, addr := startCentralOpts(t, 400, central.Options{PageSize: 1024, Shards: 4})
	eg := New(addr)
	t.Cleanup(func() { eg.Close() })
	if err := eg.PullAll(ctx); err != nil {
		t.Fatal(err)
	}
	if n, _ := eg.NumShards("items"); n != 4 {
		t.Fatalf("replicated %d shards, want 4", n)
	}

	// One insert dirties one shard; the refresh ships one shard delta.
	if err := srv.Insert("items", freshRow(t, 500_000)); err != nil {
		t.Fatal(err)
	}
	st, err := eg.Refresh(ctx, "items")
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "delta" || st.ShardsRefreshed != 1 {
		t.Fatalf("refresh after one insert: mode=%q shards=%d, want delta/1", st.Mode, st.ShardsRefreshed)
	}

	// The published set is internally consistent: map pins == pinned
	// shard snapshot versions.
	rep := eg.replica("items")
	set := rep.set.Load()
	for i, sr := range set.shards {
		if set.smap.Map.Shards[i].Version != sr.state.Version {
			t.Fatalf("shard %d: map pins v%d, snapshot at v%d", i, set.smap.Map.Shards[i].Version, sr.state.Version)
		}
	}

	// Idle tick: noop.
	st, err = eg.Refresh(ctx, "items")
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "noop" || st.ShardsRefreshed != 0 {
		t.Fatalf("idle refresh: mode=%q shards=%d", st.Mode, st.ShardsRefreshed)
	}
}

// TestShardedRefreshRecoversFromPartialFailure pins the wedge fix: a
// refresh that applied a shard's delta but failed before republishing
// the set leaves the store AHEAD of the published set. The next refresh
// must negotiate from the store's head (not the pinned set) and
// converge, instead of requesting a delta the store rejects forever.
func TestShardedRefreshRecoversFromPartialFailure(t *testing.T) {
	ctx := context.Background()
	srv, addr := startCentralOpts(t, 200, central.Options{PageSize: 1024, Shards: 2})
	eg := New(addr)
	t.Cleanup(func() { eg.Close() })
	if err := eg.PullAll(ctx); err != nil {
		t.Fatal(err)
	}

	// Commit to shard 1 (key above the boundary).
	if err := srv.Insert("items", freshRow(t, 500_000)); err != nil {
		t.Fatal(err)
	}

	// Simulate the partial failure: apply shard 1's delta directly into
	// its store WITHOUT republishing the tableSet — exactly the state a
	// refresh error after applyDelta leaves behind.
	rep := eg.replica("items")
	cur := rep.set.Load()
	head := cur.shards[1].state
	d, err := srv.ShardDelta("items", 1, head.Version, head.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if d.SnapshotNeeded {
		t.Fatal("expected a shard delta")
	}
	if err := applyDelta(cur.shards[1].store, d, wire.ShardRef("items", 1)); err != nil {
		t.Fatal(err)
	}
	// Sanity: the store is now ahead of the published set.
	if hs, _ := storeState(cur.shards[1].store); hs.Version != head.Version+1 {
		t.Fatalf("store head at v%d, want v%d", hs.Version, head.Version+1)
	}

	// The next refresh must converge (publishing the set the store is
	// already at), not wedge on a version mismatch.
	st, err := eg.Refresh(ctx, "items")
	if err != nil {
		t.Fatalf("refresh after partial failure wedged: %v", err)
	}
	if st.Mode == "snapshot" {
		t.Fatalf("recovery forced a snapshot; a set republish sufficed (mode=%q)", st.Mode)
	}
	set := rep.set.Load()
	for i, sr := range set.shards {
		if set.smap.Map.Shards[i].Version != sr.state.Version {
			t.Fatalf("shard %d: map pins v%d, snapshot at v%d", i, set.smap.Map.Shards[i].Version, sr.state.Version)
		}
	}
	cv, err := srv.Version("items")
	if err != nil {
		t.Fatal(err)
	}
	if ev, _ := eg.Version("items"); ev != cv {
		t.Fatalf("edge at map v%d, central at v%d", ev, cv)
	}

	// And a further ordinary commit still refreshes normally.
	if err := srv.Insert("items", freshRow(t, 500_001)); err != nil {
		t.Fatal(err)
	}
	if st, err := eg.Refresh(ctx, "items"); err != nil || st.Mode != "delta" {
		t.Fatalf("post-recovery refresh: mode=%q err=%v", st.Mode, err)
	}
}
