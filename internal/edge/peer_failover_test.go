package edge

import (
	"context"
	"errors"
	"net"
	"testing"

	"edgeauth/internal/central"
	"edgeauth/internal/client"
	"edgeauth/internal/query"
	"edgeauth/internal/schema"
	"edgeauth/internal/wire"
)

// TestPeerDeathFailsOverWithinTheRound kills the upstream peer between
// commits and shows the downstream edge completing the SAME refresh
// round from the central — no error surfaces, no retry tick is needed,
// and clients never observe an ErrStaleReplica window.
func TestPeerDeathFailsOverWithinTheRound(t *testing.T) {
	ctx := context.Background()
	srv, centralAddr := startCentralOpts(t, 300, central.Options{PageSize: 1024, Shards: 2})

	t1 := NewWithOptions(centralAddr, Options{ServePeers: true})
	t.Cleanup(func() { t1.Close() })
	if err := t1.PullAll(ctx); err != nil {
		t.Fatal(err)
	}
	// Serve tier-1 on a listener this test controls, so it can be killed
	// mid-scenario.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go t1.Serve(ln)

	t2 := NewWithOptions(centralAddr, Options{Upstreams: []string{ln.Addr().String()}})
	t.Cleanup(func() { t2.Close() })
	if err := t2.PullAll(ctx); err != nil {
		t.Fatal(err)
	}
	// Sanity: the tier works while the peer is alive.
	if err := srv.Insert("items", freshRow(t, 500_000)); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Refresh(ctx, "items"); err != nil {
		t.Fatal(err)
	}
	if st, err := t2.Refresh(ctx, "items"); err != nil || st.Mode != "delta" {
		t.Fatalf("warm-up refresh: %+v, %v", st, err)
	}

	// Kill the upstream, then commit again. The next tier-2 round finds
	// the peer gone and must finish from the central — same round, no
	// error, no staleness.
	t1.Close()
	ln.Close()
	if err := srv.Insert("items", freshRow(t, 600_000)); err != nil {
		t.Fatal(err)
	}
	st, err := t2.Refresh(ctx, "items")
	if err != nil {
		t.Fatalf("refresh with dead upstream: %v", err)
	}
	if st.Mode != "delta" {
		t.Fatalf("refresh mode = %q, want delta (central completed the round)", st.Mode)
	}
	if got := t2.Stats().PeerFailovers; got == 0 {
		t.Fatal("dead peer was not recorded as a failover")
	}
	want, _ := srv.Version("items")
	if v, _ := t2.Version("items"); v != want {
		t.Fatalf("tier-2 at v%d, central at v%d", v, want)
	}

	// Clients see fresh verified data, not a staleness window.
	edgeAddr := startEdge(t, t2)
	cl, err := client.Dial(ctx, client.Config{EdgeAddr: edgeAddr, CentralAddr: centralAddr})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.FetchTrustedKey(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Query(ctx, "items", []query.Predicate{
		{Column: "id", Op: query.OpGE, Value: schema.Int64(500_000)},
	}, nil)
	if errors.Is(err, wire.ErrStaleReplica) {
		t.Fatalf("client saw a staleness window: %v", err)
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.Tuples) != 2 {
		t.Fatalf("verified rows = %d, want both commits visible", len(res.Result.Tuples))
	}

	// The dead source stays visible (and scored) in the stats surface.
	stats := t2.PeerStats()
	if len(stats) != 1 || stats[0].ConsecutiveFail == 0 {
		t.Fatalf("peer stats after death = %+v", stats)
	}
}
