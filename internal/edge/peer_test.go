package edge

import (
	"context"
	"errors"
	"testing"

	"edgeauth/internal/central"
	"edgeauth/internal/client"
	"edgeauth/internal/query"
	"edgeauth/internal/schema"
	"edgeauth/internal/wire"
)

// startPeerTier builds a two-tier deployment: a sharded central, a
// tier-1 edge replicating from it and serving peers, and a tier-2 edge
// whose bulk refresh traffic is configured to flow through tier-1.
// Only the tier-1 edge has pulled; the caller decides when tier-2 does.
func startPeerTier(t *testing.T, rows, shards int) (srv *central.Server, centralAddr string, t1 *Server, t2 *Server) {
	t.Helper()
	srv, centralAddr = startCentralOpts(t, rows, central.Options{PageSize: 1024, Shards: shards})
	t1 = NewWithOptions(centralAddr, Options{ServePeers: true})
	if err := t1.PullAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	peerAddr := startEdge(t, t1)
	t2 = NewWithOptions(centralAddr, Options{Upstreams: []string{peerAddr}})
	t.Cleanup(func() { t2.Close() })
	return srv, centralAddr, t1, t2
}

// verifiedCount runs a verified scatter-gather client query against an
// edge and returns how many tuples survived verification.
func verifiedCount(t *testing.T, edgeAddr, centralAddr string, loID int64) int {
	t.Helper()
	ctx := context.Background()
	cl, err := client.Dial(ctx, client.Config{EdgeAddr: edgeAddr, CentralAddr: centralAddr})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.FetchTrustedKey(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Query(ctx, "items", []query.Predicate{
		{Column: "id", Op: query.OpGE, Value: schema.Int64(loID)},
	}, nil)
	if err != nil {
		t.Fatalf("verified query: %v", err)
	}
	return len(res.Result.Tuples)
}

// TestPeerTierBootstrapAndDeltaRelay is the tier's happy path: a
// late-joining edge bootstraps its shard snapshots from a peer (only
// the signed map and key come from the central), and subsequent commits
// reach it as relayed deltas the peer itself pulled — with the central
// egressing bulk once, to tier-1.
func TestPeerTierBootstrapAndDeltaRelay(t *testing.T) {
	ctx := context.Background()
	srv, centralAddr, t1, t2 := startPeerTier(t, 300, 2)

	// Bootstrap: both shard snapshots come from the peer.
	if err := t2.PullAll(ctx); err != nil {
		t.Fatal(err)
	}
	if got := t2.Stats().PeerPayloadsPulled; got != 2 {
		t.Fatalf("tier-2 pulled %d payloads from peers during bootstrap, want 2 snapshots", got)
	}
	if got := t1.Stats().PeerPayloadsServed; got != 2 {
		t.Fatalf("tier-1 served %d peer payloads, want 2", got)
	}
	if got := t2.Stats().PeerFailovers; got != 0 {
		t.Fatalf("clean bootstrap recorded %d failovers", got)
	}

	// A commit propagates tier by tier: tier-1 pulls the central delta
	// (and caches the raw body), tier-2 gets it relayed.
	if err := srv.Insert("items", freshRow(t, 500_000)); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Refresh(ctx, "items"); err != nil {
		t.Fatal(err)
	}
	preCentral := t2.Stats().CentralPayloadsPulled
	st, err := t2.Refresh(ctx, "items")
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "delta" || st.ShardsRefreshed != 1 {
		t.Fatalf("tier-2 refresh: mode=%q shards=%d, want delta/1", st.Mode, st.ShardsRefreshed)
	}
	// The only central payload in the round is the signed shard map; the
	// delta came from the peer.
	if got := t2.Stats().CentralPayloadsPulled - preCentral; got != 1 {
		t.Fatalf("tier-2 pulled %d central payloads in the refresh round, want 1 (the map)", got)
	}
	if got := t2.Stats().PeerPayloadsPulled; got != 3 {
		t.Fatalf("tier-2 peer payloads after refresh = %d, want 3", got)
	}

	// Tier-2 is exactly where the central is, and client queries against
	// it verify end to end.
	want, err := srv.Version("items")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := t2.Version("items"); v != want {
		t.Fatalf("tier-2 at v%d, central at v%d", v, want)
	}
	if n := verifiedCount(t, startEdge(t, t2), centralAddr, 499_999); n != 1 {
		t.Fatalf("verified rows = %d, want 1", n)
	}
}

// TestPeerStaleFailoverToCentral is the staleness guard end to end: the
// upstream peer has NOT refreshed, so its replica is no newer than the
// requester's. It must answer with the typed wire.ErrBehind — and the
// requester must complete the same refresh round from the central —
// rather than ever serving a fabricated empty delta.
func TestPeerStaleFailoverToCentral(t *testing.T) {
	ctx := context.Background()
	srv, _, t1, t2 := startPeerTier(t, 300, 2)
	if err := t2.PullAll(ctx); err != nil {
		t.Fatal(err)
	}

	if err := srv.Insert("items", freshRow(t, 500_000)); err != nil {
		t.Fatal(err)
	}
	// Tier-1 deliberately does not refresh.
	st, err := t2.Refresh(ctx, "items")
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "delta" {
		t.Fatalf("refresh mode = %q, want delta (from the central)", st.Mode)
	}
	if got := t2.Stats().PeerFailovers; got == 0 {
		t.Fatal("stale peer was not scored as a failover")
	}
	want, _ := srv.Version("items")
	if v, _ := t2.Version("items"); v != want {
		t.Fatalf("tier-2 at v%d, central at v%d", v, want)
	}
	_ = t1
}

// TestPeerDeltaGapSnapshotCatchup: the peer is current but its relay
// cache cannot bridge the requester's gap. The typed wire.ErrDeltaGap
// steers the requester to the peer's snapshot — pinned exactly to the
// central-verified map — instead of a silent failure or a central bulk
// pull.
func TestPeerDeltaGapSnapshotCatchup(t *testing.T) {
	ctx := context.Background()
	srv, _, t1, t2 := startPeerTier(t, 300, 2)
	if err := t2.PullAll(ctx); err != nil {
		t.Fatal(err)
	}

	if err := srv.Insert("items", freshRow(t, 500_000)); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Refresh(ctx, "items"); err != nil {
		t.Fatal(err)
	}
	// Evict the relayable history: the peer stays current but can no
	// longer answer tier-2's from-version with a delta.
	for i := 0; i < 2; i++ {
		t1.relay.Drop(wire.ShardRef("items", uint32(i)))
	}
	preServed := t1.Stats().PeerPayloadsServed
	st, err := t2.Refresh(ctx, "items")
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "snapshot" {
		t.Fatalf("refresh mode = %q, want snapshot (peer catch-up)", st.Mode)
	}
	if got := t1.Stats().PeerPayloadsServed; got <= preServed {
		t.Fatal("catch-up snapshot was not served by the peer")
	}
	want, _ := srv.Version("items")
	if v, _ := t2.Version("items"); v != want {
		t.Fatalf("tier-2 at v%d, central at v%d", v, want)
	}
}

// TestServePeerTypedErrors pins the serving-side contract directly:
// requests a peer cannot (or must not) answer come back as TYPED
// errors the puller's failover logic dispatches on.
func TestServePeerTypedErrors(t *testing.T) {
	ctx := context.Background()
	_, _, t1, _ := startPeerTier(t, 200, 2)

	// A requester at (or past) the peer's head: Behind, never an empty
	// delta.
	req := &wire.ShardDeltaRequest{Table: "items", Shard: 0, FromVersion: 0, Epoch: mustEpochOf(t, t1)}
	_, _, err := t1.servePeer(ctx, wire.MsgShardDeltaReq, req.Encode())
	if !errors.Is(err, wire.ErrBehind) {
		t.Fatalf("delta at head: %v, want wire.ErrBehind", err)
	}
	// A requester from a different incarnation: also Behind (fail over).
	req = &wire.ShardDeltaRequest{Table: "items", Shard: 0, FromVersion: 0, Epoch: mustEpochOf(t, t1) + 1}
	_, _, err = t1.servePeer(ctx, wire.MsgShardDeltaReq, req.Encode())
	if !errors.Is(err, wire.ErrBehind) {
		t.Fatalf("delta across epochs: %v, want wire.ErrBehind", err)
	}
	// Unknown table stays the classic typed error.
	req = &wire.ShardDeltaRequest{Table: "nope", Shard: 0}
	_, _, err = t1.servePeer(ctx, wire.MsgShardDeltaReq, req.Encode())
	if !errors.Is(err, wire.ErrUnknownTable) {
		t.Fatalf("unknown table: %v", err)
	}
	// A v1 single-tree request against a partitioned replica is refused
	// with the protocol-switch error (CodeUnsupported, like the central).
	_, _, err = t1.servePeer(ctx, wire.MsgSnapshotReq, []byte("items"))
	if !errors.Is(err, wire.ErrUnsupported) {
		t.Fatalf("legacy snapshot of sharded table: %v, want wire.ErrUnsupported", err)
	}

	// A non-serving edge answers replication requests exactly like a
	// pre-peer build: typed unsupported.
	off := NewWithOptions("127.0.0.1:1", Options{})
	t.Cleanup(func() { off.Close() })
	_, _, err = off.servePeer(ctx, wire.MsgShardDeltaReq, (&wire.ShardDeltaRequest{Table: "items"}).Encode())
	if !errors.Is(err, wire.ErrUnsupported) {
		t.Fatalf("non-serving edge: %v, want wire.ErrUnsupported", err)
	}
}

// mustEpochOf reads the items epoch from an edge's published replica.
func mustEpochOf(t *testing.T, eg *Server) uint64 {
	t.Helper()
	rep := eg.replica("items")
	if rep == nil {
		t.Fatal("no items replica")
	}
	set := rep.set.Load()
	if set == nil {
		t.Fatal("no published set")
	}
	// Serving a delta for a requester AT the head version must fail
	// Behind regardless of shard, so shard 0's epoch is representative.
	return set.shards[0].state.Epoch
}

// TestPeerCapabilityAdvertised: a serving edge advertises CapPeerServe
// in its Hello response, and the puller records it on the source.
func TestPeerCapabilityAdvertised(t *testing.T) {
	ctx := context.Background()
	_, _, t1, t2 := startPeerTier(t, 200, 2)
	if err := t2.PullAll(ctx); err != nil {
		t.Fatal(err)
	}
	stats := t2.PeerStats()
	if len(stats) != 1 {
		t.Fatalf("PeerStats = %+v, want one source", stats)
	}
	if stats[0].Caps&wire.CapPeerServe == 0 {
		t.Fatalf("source caps = %#x, want CapPeerServe advertised", stats[0].Caps)
	}
	_ = t1
}
