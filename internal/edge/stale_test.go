package edge

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"

	"edgeauth/internal/central"
	"edgeauth/internal/client"
	"edgeauth/internal/query"
	"edgeauth/internal/rpc"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/vbtree"
	"edgeauth/internal/wire"
)

// fakeCentral impersonates a restarted central server: it signs with the
// real key but advertises a different table epoch, and can be told to
// fail snapshot requests (modelling the fallback pull dying mid-recovery).
type fakeCentral struct {
	key          *sig.PrivateKey
	real         *central.Server
	epoch        uint64
	failSnapshot atomic.Bool
	snapshotReqs atomic.Int64
	listServed   atomic.Bool
}

func (f *fakeCentral) serve(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				rpc.ServeConn(conn, f.dispatch, rpc.ServeOptions{})
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

func (f *fakeCentral) dispatch(ctx context.Context, mt wire.MsgType, body []byte) (wire.MsgType, []byte, error) {
	switch mt {
	case wire.MsgPubKeyReq:
		blob, err := f.key.Public().MarshalBinary()
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgPubKeyResp, blob, nil
	case wire.MsgListTablesReq:
		f.listServed.Store(true)
		return wire.MsgListTablesResp, wire.EncodeStringList([]string{"items"}), nil
	case wire.MsgDeltaReq:
		req, err := wire.DecodeDeltaRequest(body)
		if err != nil {
			return 0, nil, err
		}
		// A different incarnation: versions are not comparable, so the
		// answer is a properly signed snapshot-needed delta.
		d := &wire.Delta{
			Table:          req.Table,
			FromVersion:    req.FromVersion,
			ToVersion:      3,
			Epoch:          f.epoch,
			SnapshotNeeded: true,
		}
		sg, err := f.key.Sign(d.SigPayload())
		if err != nil {
			return 0, nil, err
		}
		d.Sig = sg
		return wire.MsgDeltaResp, d.Encode(), nil
	case wire.MsgSnapshotReq:
		f.snapshotReqs.Add(1)
		if f.failSnapshot.Load() {
			return 0, nil, errors.New("fake central: snapshot store unavailable")
		}
		snap, err := f.real.Snapshot(string(body))
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgSnapshotResp, snap.Encode(), nil
	default:
		return 0, nil, wire.Unsupported("fake-central", mt)
	}
}

// TestQueriesReportStaleReplicaAfterEpochDivergence: when a refresh
// discovers the central's table epoch has diverged and the snapshot
// fallback fails, queries must return the errors.Is-matchable
// wire.ErrStaleReplica instead of silently serving the dead incarnation —
// and heal once a snapshot finally installs.
func TestQueriesReportStaleReplicaAfterEpochDivergence(t *testing.T) {
	ctx := context.Background()
	srv, _ := startCentral(t, 120)

	fake := &fakeCentral{key: serverKey(t), real: srv, epoch: 0xDEAD_BEEF}
	fake.failSnapshot.Store(true)
	eg := New(fake.serve(t))
	t.Cleanup(func() { eg.Close() })

	// Seed the replica from the genuine central (epoch != fake.epoch).
	snap, err := srv.Snapshot("items")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := InstallSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	eg.setReplica("items", rep)

	lo, hi := schema.Int64(10), schema.Int64(20)
	if _, _, err := eg.RunQuery(ctx, "items", vbtree.Query{Lo: &lo, Hi: &hi}); err != nil {
		t.Fatalf("pre-divergence query: %v", err)
	}

	// Refresh discovers the epoch divergence; the snapshot fallback dies.
	if _, err := eg.Refresh(ctx, "items"); err == nil {
		t.Fatal("refresh succeeded although the snapshot fallback failed")
	}
	if fake.snapshotReqs.Load() == 0 {
		t.Fatal("refresh never attempted the snapshot fallback")
	}

	// Queries now signal staleness instead of answering from the dead
	// incarnation — locally and through a TCP client.
	_, _, err = eg.RunQuery(ctx, "items", vbtree.Query{Lo: &lo, Hi: &hi})
	if !errors.Is(err, wire.ErrStaleReplica) {
		t.Fatalf("query on diverged replica: %v, want wire.ErrStaleReplica", err)
	}
	edgeAddr := startEdge(t, eg)
	cl, err := client.Dial(ctx, client.Config{EdgeAddr: edgeAddr, CentralAddr: fake.serve(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, err = cl.Query(ctx, "items", []query.Predicate{
		{Column: "id", Op: query.OpGE, Value: schema.Int64(10)},
	}, nil)
	if !errors.Is(err, wire.ErrStaleReplica) {
		t.Fatalf("client query on diverged replica: %v, want wire.ErrStaleReplica", err)
	}

	// Healing: the snapshot store comes back, a refresh reinstalls, and
	// queries serve again.
	fake.failSnapshot.Store(false)
	st, err := eg.Refresh(ctx, "items")
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "snapshot" {
		t.Fatalf("healing refresh mode = %q, want snapshot", st.Mode)
	}
	if _, _, err := eg.RunQuery(ctx, "items", vbtree.Query{Lo: &lo, Hi: &hi}); err != nil {
		t.Fatalf("query after snapshot reinstall: %v", err)
	}
}

// flagCtx reports cancellation as soon as flag is set — without a Done
// channel, so in-flight calls complete and only explicit ctx.Err() checks
// observe it. It models a caller whose deadline expires between tables.
type flagCtx struct {
	context.Context
	flag *atomic.Bool
}

func (c *flagCtx) Err() error {
	if c.flag.Load() {
		return context.Canceled
	}
	return nil
}

// TestRefreshAllStopsOnCancelledContext: a context cancelled after the
// table listing must stop the per-table loop instead of marching on (or
// accumulating one dial error per remaining table).
func TestRefreshAllStopsOnCancelledContext(t *testing.T) {
	srv, _ := startCentral(t, 60)
	fake := &fakeCentral{key: serverKey(t), real: srv, epoch: 0xBADC0FFE}
	eg := New(fake.serve(t))
	t.Cleanup(func() { eg.Close() })

	// The context cancels the moment the table listing has been served —
	// before the loop reaches any table.
	ctx := &flagCtx{Context: context.Background(), flag: &fake.listServed}
	stats, err := eg.RefreshAll(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RefreshAll error = %v, want context.Canceled", err)
	}
	if len(stats) != 0 {
		t.Fatalf("cancelled RefreshAll still refreshed %d tables", len(stats))
	}
	if strings.Contains(err.Error(), "refreshing") {
		t.Fatalf("cancelled RefreshAll still visited tables: %v", err)
	}
	// The pre-fix loop would have pulled the (missing) replica's snapshot.
	if n := fake.snapshotReqs.Load(); n != 0 {
		t.Fatalf("cancelled RefreshAll still issued %d snapshot pulls", n)
	}
}
