package edge

import (
	"context"
	"net"
	"strings"
	"testing"

	"edgeauth/internal/central"
	"edgeauth/internal/client"
	"edgeauth/internal/query"
	"edgeauth/internal/schema"
	"edgeauth/internal/workload"
)

// startCentralOpts is startCentral with explicit options (delta retention,
// WAL) for the refresh tests.
func startCentralOpts(t *testing.T, rows int, opts central.Options) (*central.Server, string) {
	t.Helper()
	srv, err := central.NewServerWithKey(opts, serverKey(t))
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.DefaultSpec(rows)
	sch, err := spec.Schema()
	if err != nil {
		t.Fatal(err)
	}
	tuples, err := spec.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddTable(sch, tuples); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

// freshRow builds an insertable row with the workload's column layout.
func freshRow(t *testing.T, id int64) schema.Tuple {
	t.Helper()
	sch, err := workload.DefaultSpec(1).Schema()
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]schema.Datum, len(sch.Columns))
	vals[0] = schema.Int64(id)
	for i := 1; i < len(vals); i++ {
		if sch.Columns[i].Name == "cat" {
			vals[i] = schema.Str(workload.CategoryName(1))
			continue
		}
		vals[i] = schema.Str("refresh-test-payload-")
	}
	return schema.Tuple{Values: vals}
}

// mustEpoch fetches the "items" incarnation id.
func mustEpoch(t *testing.T, srv *central.Server) uint64 {
	t.Helper()
	ep, err := srv.TableEpoch("items")
	if err != nil {
		t.Fatal(err)
	}
	return ep
}

// startEdge serves an edge (already pulled) on loopback for clients.
func startEdge(t *testing.T, eg *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go eg.Serve(ln)
	t.Cleanup(func() { eg.Close() })
	return ln.Addr().String()
}

// TestRefreshDeltaEndToEnd drives the whole periodic-propagation path
// over real TCP: updates commit at the central server, a refresh tick
// ships a signed delta, and a verifying client sees the new state.
func TestRefreshDeltaEndToEnd(t *testing.T) {
	srv, centralAddr := startCentralOpts(t, 200, central.Options{PageSize: 1024})
	eg := New(centralAddr)
	if err := eg.PullAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	edgeAddr := startEdge(t, eg)

	cl, err := client.Dial(context.Background(), client.Config{EdgeAddr: edgeAddr, CentralAddr: centralAddr})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.FetchTrustedKey(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Route updates through the client to the central server.
	if err := cl.Insert(context.Background(), "items", freshRow(t, 50_000)); err != nil {
		t.Fatal(err)
	}
	lo, hi := schema.Int64(0), schema.Int64(4)
	if n, err := cl.DeleteRange(context.Background(), "items", &lo, &hi); err != nil || n != 5 {
		t.Fatalf("delete: n=%d err=%v", n, err)
	}

	// The replica is stale until a refresh tick.
	if v, err := eg.Version("items"); err != nil || v != 0 {
		t.Fatalf("replica version before refresh: %d, %v", v, err)
	}

	stats, err := eg.RefreshAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 || stats[0].Mode != "delta" {
		t.Fatalf("refresh stats = %+v, want one delta", stats)
	}
	want, err := srv.Version("items")
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].ToVersion != want {
		t.Fatalf("refresh reached v%d, central at v%d", stats[0].ToVersion, want)
	}

	// A verified client query reflects both updates.
	res, err := cl.Query(context.Background(), "items", []query.Predicate{
		{Column: "id", Op: query.OpGE, Value: schema.Int64(49_999)},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.Tuples) != 1 || res.Result.Tuples[0].Values[0].I != 50_000 {
		t.Fatalf("inserted row not visible after delta refresh: %+v", res.Result.Tuples)
	}
	res, err = cl.Query(context.Background(), "items", []query.Predicate{
		{Column: "id", Op: query.OpLE, Value: schema.Int64(4)},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.Tuples) != 0 {
		t.Fatalf("deleted rows still visible after delta refresh: %d", len(res.Result.Tuples))
	}

	// A second tick with nothing pending is a signed noop.
	stats, err = eg.RefreshAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Mode != "noop" {
		t.Fatalf("idle refresh mode = %q", stats[0].Mode)
	}
}

// TestRefreshSnapshotFallback forces the replica out of the central
// server's retention window and checks the refresh falls back to a full
// snapshot that still verifies end to end.
func TestRefreshSnapshotFallback(t *testing.T) {
	srv, centralAddr := startCentralOpts(t, 150, central.Options{PageSize: 1024, DeltaRetention: 2})
	eg := New(centralAddr)
	if err := eg.PullAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	edgeAddr := startEdge(t, eg)

	for i := int64(0); i < 5; i++ {
		if err := srv.Insert("items", freshRow(t, 60_000+i)); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := eg.RefreshAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Mode != "snapshot" {
		t.Fatalf("refresh mode = %q, want snapshot fallback", stats[0].Mode)
	}
	want, err := srv.Version("items")
	if err != nil {
		t.Fatal(err)
	}
	if got, err := eg.Version("items"); err != nil || got != want {
		t.Fatalf("replica at v%d after fallback, central at v%d (%v)", got, want, err)
	}

	cl, err := client.Dial(context.Background(), client.Config{EdgeAddr: edgeAddr, CentralAddr: centralAddr})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.FetchTrustedKey(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Query(context.Background(), "items", []query.Predicate{
		{Column: "id", Op: query.OpGE, Value: schema.Int64(60_000)},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.Tuples) != 5 {
		t.Fatalf("snapshot fallback lost rows: got %d, want 5", len(res.Result.Tuples))
	}

	// Within the window again: the next update arrives as a delta.
	if err := srv.Insert("items", freshRow(t, 70_000)); err != nil {
		t.Fatal(err)
	}
	stats, err = eg.RefreshAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Mode != "delta" {
		t.Fatalf("post-fallback refresh mode = %q, want delta", stats[0].Mode)
	}
}

// TestDeltaTransfersLessThanSnapshot pins the scaling claim: a small
// update batch on a large table must move far fewer bytes as a delta
// than as a snapshot.
func TestDeltaTransfersLessThanSnapshot(t *testing.T) {
	srv, centralAddr := startCentralOpts(t, 2_000, central.Options{PageSize: 1024})
	eg := New(centralAddr)
	if err := eg.PullAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap, err := srv.Snapshot("items")
	if err != nil {
		t.Fatal(err)
	}
	snapshotBytes := len(snap.Encode())

	for i := int64(0); i < 4; i++ {
		if err := srv.Insert("items", freshRow(t, 80_000+i)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := eg.Refresh(context.Background(), "items")
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "delta" {
		t.Fatalf("refresh mode = %q", st.Mode)
	}
	if st.Bytes*4 >= snapshotBytes {
		t.Fatalf("delta of %d bytes is not asymptotically smaller than snapshot of %d bytes", st.Bytes, snapshotBytes)
	}
	t.Logf("4-op delta: %d bytes; full snapshot: %d bytes (%.1fx saving)",
		st.Bytes, snapshotBytes, float64(snapshotBytes)/float64(st.Bytes))
}

// TestRefreshRejectsForgedDelta checks the edge refuses a delta whose
// signature does not verify under the central server's public key.
func TestRefreshRejectsForgedDelta(t *testing.T) {
	srv, centralAddr := startCentralOpts(t, 100, central.Options{PageSize: 1024})
	eg := New(centralAddr)
	if err := eg.PullAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := srv.Insert("items", freshRow(t, 90_000)); err != nil {
		t.Fatal(err)
	}
	d, err := srv.Delta("items", 0, mustEpoch(t, srv))
	if err != nil {
		t.Fatal(err)
	}
	// Flip a content byte: the signature no longer matches.
	d.ToVersion++
	pub := srv.PublicKey()
	if err := pub.Verify(d.Sig, d.SigPayload()); err == nil {
		t.Fatal("tampered delta still verifies")
	}
	// And the genuine delta does.
	d.ToVersion--
	if err := pub.Verify(d.Sig, d.SigPayload()); err != nil {
		t.Fatalf("genuine delta rejected: %v", err)
	}

	// An edge replica applies only matching versions.
	rep := eg.replica("items")
	bogus := *d
	bogus.FromVersion = 7
	if err := applyDelta(rep.set.Load().shards[0].store, &bogus, "items"); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version-mismatched delta applied: %v", err)
	}
}
