package edge

import (
	"context"
	"net"
	"sync"
	"testing"

	"edgeauth/internal/central"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/vbtree"
	"edgeauth/internal/verify"
	"edgeauth/internal/vo"
	"edgeauth/internal/wire"
	"edgeauth/internal/workload"
)

var (
	keyOnce sync.Once
	testKey *sig.PrivateKey
)

func serverKey(t testing.TB) *sig.PrivateKey {
	t.Helper()
	keyOnce.Do(func() { testKey = sig.MustGenerateKey(512) })
	return testKey
}

// startCentral brings up a central server with one table on loopback.
func startCentral(t *testing.T, rows int) (*central.Server, string) {
	t.Helper()
	srv, err := central.NewServerWithKey(central.Options{PageSize: 1024}, serverKey(t))
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.DefaultSpec(rows)
	sch, err := spec.Schema()
	if err != nil {
		t.Fatal(err)
	}
	tuples, err := spec.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddTable(sch, tuples); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

func TestPullAndQueryLocally(t *testing.T) {
	srv, addr := startCentral(t, 150)
	eg := New(addr)
	if err := eg.PullAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := eg.Tables(); len(got) != 1 || got[0] != "items" {
		t.Fatalf("Tables = %v", got)
	}
	lo, hi := schema.Int64(10), schema.Int64(29)
	rs, w, err := eg.RunQuery(context.Background(), "items", vbtree.Query{Lo: &lo, Hi: &hi})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Tuples) != 20 {
		t.Fatalf("got %d tuples", len(rs.Tuples))
	}
	// The replica's answers verify against the central key.
	sch, err := eg.Schema("items")
	if err != nil {
		t.Fatal(err)
	}
	ver := &verify.Verifier{
		Key:    srv.PublicKey(),
		Acc:    srv.Accumulator(),
		Schema: sch,
	}
	if err := ver.Verify(rs, w); err != nil {
		t.Fatalf("edge replica answer failed verification: %v", err)
	}
}

func TestInstallSnapshotValidation(t *testing.T) {
	if _, err := InstallSnapshot(&wire.Snapshot{PageSize: 8}); err == nil {
		t.Fatal("tiny page size accepted")
	}
	srv, _ := startCentral(t, 30)
	snap, err := srv.Snapshot("items")
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt page length.
	snap.PageData[0] = snap.PageData[0][:10]
	if _, err := InstallSnapshot(snap); err == nil {
		t.Fatal("short page accepted")
	}
}

func TestReplicaIsolationFromCentral(t *testing.T) {
	srv, addr := startCentral(t, 60)
	eg := New(addr)
	if err := eg.PullAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Mutate the central copy; the edge replica must be unaffected until
	// it re-pulls (snapshot semantics, not shared state).
	lo := schema.Int64(0)
	hi := schema.Int64(9)
	if _, err := srv.DeleteRange("items", &lo, &hi); err != nil {
		t.Fatal(err)
	}
	rs, _, err := eg.RunQuery(context.Background(), "items", vbtree.Query{Lo: &lo, Hi: &hi})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Tuples) != 10 {
		t.Fatalf("replica saw central's delete without a pull: %d tuples", len(rs.Tuples))
	}
	if err := eg.Pull(context.Background(), "items"); err != nil {
		t.Fatal(err)
	}
	rs, _, err = eg.RunQuery(context.Background(), "items", vbtree.Query{Lo: &lo, Hi: &hi})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Tuples) != 0 {
		t.Fatalf("after pull, deleted tuples still visible: %d", len(rs.Tuples))
	}
}

func TestUnknownTableErrors(t *testing.T) {
	_, addr := startCentral(t, 10)
	eg := New(addr)
	if err := eg.Pull(context.Background(), "ghost"); err == nil {
		t.Fatal("pull of unknown table succeeded")
	}
	if _, _, err := eg.RunQuery(context.Background(), "ghost", vbtree.Query{}); err == nil {
		t.Fatal("query of unreplicated table succeeded")
	}
	if _, err := eg.Schema("ghost"); err == nil {
		t.Fatal("schema of unreplicated table succeeded")
	}
}

func TestUnreachableCentral(t *testing.T) {
	eg := New("127.0.0.1:1") // nothing listens there
	if err := eg.PullAll(context.Background()); err == nil {
		t.Fatal("PullAll against dead central succeeded")
	}
	if err := eg.Pull(context.Background(), "items"); err == nil {
		t.Fatal("Pull against dead central succeeded")
	}
}

func TestTamperHookAppliesAndClears(t *testing.T) {
	_, addr := startCentral(t, 80)
	eg := New(addr)
	if err := eg.PullAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	calls := 0
	eg.SetTamper(func(rs *vo.ResultSet, w *vo.VO) error {
		calls++
		return nil
	})
	lo, hi := schema.Int64(1), schema.Int64(5)
	if _, _, err := eg.RunQuery(context.Background(), "items", vbtree.Query{Lo: &lo, Hi: &hi}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("tamper hook called %d times", calls)
	}
	eg.SetTamper(nil)
	if _, _, err := eg.RunQuery(context.Background(), "items", vbtree.Query{Lo: &lo, Hi: &hi}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatal("cleared tamper hook still firing")
	}
}

func TestServeProtocolDispatch(t *testing.T) {
	_, addr := startCentral(t, 50)
	eg := New(addr)
	if err := eg.PullAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go eg.Serve(ln)
	t.Cleanup(func() { eg.Close() })

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// List tables.
	if err := wire.WriteFrame(conn, wire.MsgListTablesReq, nil); err != nil {
		t.Fatal(err)
	}
	mt, body, err := wire.ReadFrame(conn)
	if err != nil || mt != wire.MsgListTablesResp {
		t.Fatalf("list: %v %v", mt, err)
	}
	names, err := wire.DecodeStringList(body)
	if err != nil || len(names) != 1 {
		t.Fatalf("names = %v, %v", names, err)
	}

	// Unsupported message type gets an error frame, and the connection
	// stays usable.
	if err := wire.WriteFrame(conn, wire.MsgSnapshotReq, []byte("items")); err != nil {
		t.Fatal(err)
	}
	mt, _, err = wire.ReadFrame(conn)
	if err != nil || mt != wire.MsgError {
		t.Fatalf("unsupported message: %v %v", mt, err)
	}
	if err := wire.WriteFrame(conn, wire.MsgListTablesReq, nil); err != nil {
		t.Fatal(err)
	}
	if mt, _, err = wire.ReadFrame(conn); err != nil || mt != wire.MsgListTablesResp {
		t.Fatalf("connection unusable after error frame: %v %v", mt, err)
	}
}
