// Package edge implements the unsecured edge server of the paper's
// Figure 2: it pulls table replicas ("DB + VB-trees") from the central
// server, executes selection/projection queries locally, and returns each
// result together with its verification object.
//
// Tables may be range-partitioned at the central server: the edge then
// replicates each shard independently (its own snapshot-isolated
// storage.PageStore, its own delta stream) and relays the central-signed
// shard map to clients, which verify it and scatter-gather per-shard
// queries. Per-shard refresh means one hot shard ships only its own
// pages — a cold shard costs nothing per refresh tick.
//
// Replica storage is snapshot-isolated and set-consistent: a refresh
// builds successor shard snapshots off to the side and then publishes
// ONE immutable tableSet — the signed shard map plus a pinned snapshot
// per shard — with a single atomic pointer swap. Queries pin the set's
// snapshots (RCU: the set holds a reference for its tenure, readers
// take short-lived ones), so every answer is produced against exactly
// the map version served with it; refresh cadence and query latency
// stay independent, and a client can never observe a map that runs
// ahead of or behind the shard data answering its query.
//
// Because edge servers are the untrusted component of the architecture,
// the server carries optional tamper hooks that mutate responses (and
// served shard maps) before they are sent — the adversary used by the
// security tests and the demo binaries to show clients detecting a
// compromised edge.
package edge

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/big"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"edgeauth/internal/digest"
	"edgeauth/internal/peer"
	"edgeauth/internal/query"
	"edgeauth/internal/rpc"
	"edgeauth/internal/schema"
	"edgeauth/internal/shardmap"
	"edgeauth/internal/sig"
	"edgeauth/internal/storage"
	"edgeauth/internal/vbtree"
	"edgeauth/internal/vo"
	"edgeauth/internal/wire"
)

// TamperFn mutates a response in place before it leaves the edge server —
// the model of a hacked edge. Returning an error suppresses the response.
type TamperFn func(rs *vo.ResultSet, w *vo.VO) error

// MapTamperFn rewrites the shard map an edge serves to clients — the
// model of a hacked edge trying to hide or re-route shards. It receives
// a deep copy and returns what to serve.
type MapTamperFn func(sm *shardmap.Signed) *shardmap.Signed

// Options configures an edge server's serving side.
type Options struct {
	// IdleTimeout disconnects a client that sends no complete request
	// within the window (slowloris protection). 0 selects
	// rpc.DefaultIdleTimeout; negative disables the deadline.
	IdleTimeout time.Duration
	// MaxConcurrent bounds the requests executing concurrently on one
	// multiplexed (protocol v2) client connection. 0 selects
	// rpc.DefaultMaxConcurrent.
	MaxConcurrent int
	// Upstreams are peer edge addresses tried in order — before the
	// central server — for bulk refresh payloads (deltas, snapshots).
	// The signed shard map and the central public key always come from
	// the central: only it can vouch for freshness, so a peer can carry
	// bytes but never redefine what "current" means. Unreachable, stale
	// or misbehaving upstreams are backed off (internal/peer) and the
	// refresh fails over to the central automatically.
	Upstreams []string
	// ServePeers answers replication requests (snapshots, deltas) from
	// this edge's published replicas and relay cache, making it an
	// upstream tier for other edges (see peers.go).
	ServePeers bool
}

// Server is an edge server holding replicated tables. The query path is
// lock-free: the table registry is a copy-on-write map behind an atomic
// pointer, and each replica serves queries from the pinned snapshots of
// its current published set.
type Server struct {
	tables    atomic.Pointer[map[string]*replica]
	tablesMu  sync.Mutex // serializes registry copy-on-write updates
	tamper    atomic.Pointer[TamperFn]
	mapTamper atomic.Pointer[MapTamperFn]

	opts Options
	// central is the pipelined, auto-redialing connection to the central
	// server; every replication exchange (snapshots, deltas, shard maps,
	// the key fetch) multiplexes over it.
	central *rpc.Conn
	// peers is the ordered upstream set bulk payloads are pulled from
	// before the central (nil when no upstreams are configured; the
	// peer.Set API is nil-safe).
	peers *peer.Set
	// relay caches the raw central-signed delta bodies this edge pulled
	// and verified, for verbatim relay to downstream edges.
	relay *peer.Cache
	// peerTamper is the malicious-relay hook (see SetPeerTamper).
	peerTamper atomic.Pointer[PeerTamperFn]

	pubMu      sync.Mutex
	centralPub *sig.PublicKey

	// sigCache remembers (key version, signature) -> proven payload for
	// refresh-path signature checks; see verifySigCached.
	sigCacheMu sync.Mutex
	sigCache   map[string][]byte

	stats edgeCounters

	lnMu      sync.Mutex
	listeners []net.Listener
	conns     rpc.ConnSet
	wg        sync.WaitGroup
	closed    bool

	// baseCtx parents every client connection's context; Close cancels
	// it so in-flight query handlers stop early.
	baseCtx    context.Context
	baseCancel context.CancelFunc
	closeOnce  sync.Once
	closeErr   error
}

// replica is one replicated table. Its queryable state lives in an
// immutable tableSet behind one atomic pointer; refreshMu serializes
// refreshes building successor sets.
type replica struct {
	sch    *schema.Schema
	acc    *digest.Accumulator
	params wire.AccParams

	set atomic.Pointer[tableSet]

	refreshMu sync.Mutex

	// diverged is set when a refresh discovers the central's table epoch
	// no longer matches this replica's — its version history descends
	// from a dead incarnation, so every answer it could give is
	// unverifiably stale. Queries fail with wire.ErrStaleReplica until a
	// snapshot reinstall replaces the replica (a fresh replica object, so
	// the flag never needs clearing).
	diverged atomic.Bool
}

// tableSet is one consistent, immutable publication of a table: the
// signed shard map (nil when replicated from a pre-sharding central
// server) and, per shard, a pinned snapshot with its decoded anchor.
// The set holds one snapshot reference per shard for its tenure as the
// replica's current set; the swap that supersedes it releases them.
type tableSet struct {
	smap   *shardmap.Signed
	shards []*shardReplica
}

// shardReplica is one shard's store plus the snapshot this set pins.
type shardReplica struct {
	store *storage.PageStore
	snap  *storage.Snapshot
	state *vbtree.TableState
}

// pinCurrent pins a store's current snapshot and decodes its anchor.
func pinCurrent(store *storage.PageStore) (*shardReplica, error) {
	snap := store.Acquire()
	st, ok := snap.Meta().(*vbtree.TableState)
	if !ok {
		snap.Release()
		return nil, errors.New("edge: replica has no published version")
	}
	return &shardReplica{store: store, snap: snap, state: st}, nil
}

// storeState reads a store's current (head) anchor without keeping a
// pin. Refresh negotiates from the head, NOT from the published set's
// pinned state: after a partially-failed refresh a store may already
// sit ahead of the set, and resuming from the pinned state would
// request deltas the store must reject.
func storeState(store *storage.PageStore) (*vbtree.TableState, error) {
	snap := store.Acquire()
	defer snap.Release()
	st, ok := snap.Meta().(*vbtree.TableState)
	if !ok {
		return nil, errors.New("edge: replica has no published version")
	}
	return st, nil
}

// release drops the set's snapshot pins (called when the set is
// superseded; readers holding Retained pins keep theirs).
func (ts *tableSet) release() {
	for _, sr := range ts.shards {
		sr.snap.Release()
	}
}

// publishSet swaps in the successor set and releases the superseded one.
func (r *replica) publishSet(next *tableSet) {
	if old := r.set.Swap(next); old != nil {
		old.release()
	}
}

// rebuildSet republishes the replica's set from its stores' current
// snapshots with a new map (used after per-shard refreshes).
func (r *replica) rebuildSet(smap *shardmap.Signed, stores []*storage.PageStore) error {
	next := &tableSet{smap: smap}
	for _, store := range stores {
		sr, err := pinCurrent(store)
		if err != nil {
			for _, prev := range next.shards {
				prev.snap.Release()
			}
			return err
		}
		next.shards = append(next.shards, sr)
	}
	r.publishSet(next)
	return nil
}

// errShardRange marks a shard index outside the published set — after
// an online merge shrank the partition, a caller routing on an older
// map can legitimately address a position that no longer exists, so
// serving paths surface this as the typed shard-moved refusal rather
// than an internal error.
var errShardRange = errors.New("edge: shard index outside the published set")

// pinShard takes a reader's pin on shard i of the current set. The
// caller must Release the returned snapshot. RCU: if the set drains
// between the load and the Retain, reload and retry.
func (r *replica) pinShard(i int) (*tableSet, *shardReplica, error) {
	for {
		set := r.set.Load()
		if set == nil {
			return nil, nil, errors.New("edge: replica has no published set")
		}
		if i < 0 || i >= len(set.shards) {
			return nil, nil, fmt.Errorf("%w: shard %d, replica has %d", errShardRange, i, len(set.shards))
		}
		sr := set.shards[i]
		if sr.snap.Retain() {
			return set, sr, nil
		}
		// The set was superseded and fully drained between Load and
		// Retain; the new current set is already published.
	}
}

// New creates an edge server that replicates from centralAddr.
func New(centralAddr string) *Server {
	return NewWithOptions(centralAddr, Options{})
}

// NewWithOptions creates an edge server with explicit serving options.
func NewWithOptions(centralAddr string, opts Options) *Server {
	s := &Server{
		opts:    opts,
		central: rpc.New(centralAddr, rpc.Options{}),
		relay:   peer.NewCache(0),
	}
	if len(opts.Upstreams) > 0 {
		s.peers = peer.NewSet(opts.Upstreams, rpc.Options{Capabilities: s.helloCaps()})
	}
	// The server's root context: construction has no caller context, and
	// Close cancels it to stop handlers on every client connection.
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background()) //vetauth:ignore ctxflow server root context, cancelled by Close
	empty := make(map[string]*replica)
	s.tables.Store(&empty)
	return s
}

// SetTamper installs (or clears, with nil) the compromised-edge hook.
func (s *Server) SetTamper(fn TamperFn) {
	s.tamper.Store(&fn)
}

// SetMapTamper installs (or clears, with nil) the compromised-edge hook
// rewriting served shard maps.
func (s *Server) SetMapTamper(fn MapTamperFn) {
	s.mapTamper.Store(&fn)
}

// replica resolves a table from the lock-free registry.
func (s *Server) replica(name string) *replica {
	return (*s.tables.Load())[name]
}

// setReplica publishes a new registry map with name -> rep installed.
// The displaced replica's set (if any) is released so its pins drain.
func (s *Server) setReplica(name string, rep *replica) {
	s.tablesMu.Lock()
	defer s.tablesMu.Unlock()
	old := *s.tables.Load()
	next := make(map[string]*replica, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	displaced := old[name]
	next[name] = rep
	s.tables.Store(&next)
	if displaced != nil && displaced != rep {
		if set := displaced.set.Swap(nil); set != nil {
			set.release()
		}
	}
}

// Tables lists the replicated tables.
func (s *Server) Tables() []string {
	m := *s.tables.Load()
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// PullAll replicates every table the central server advertises.
func (s *Server) PullAll(ctx context.Context) error {
	body, err := s.central.Call(ctx, wire.MsgListTablesReq, nil, wire.MsgListTablesResp, true)
	if err != nil {
		return err
	}
	names, err := wire.DecodeStringList(body)
	if err != nil {
		return err
	}
	for _, name := range names {
		if _, err := s.pull(ctx, name); err != nil {
			return err
		}
	}
	return nil
}

// Pull replicates (or refreshes) one table with full snapshots.
func (s *Server) Pull(ctx context.Context, tableName string) error {
	_, err := s.pull(ctx, tableName)
	return err
}

// isUnsupported detects a peer that does not know a message type: typed
// on protocol v2, a prose error frame on legacy v1.
func isUnsupported(err error) bool {
	return errors.Is(err, wire.ErrUnsupported) ||
		strings.Contains(err.Error(), "unsupported message")
}

// pull replicates one table — shard by shard when the central server
// partitions it, as one snapshot otherwise — and returns the combined
// wire size.
func (s *Server) pull(ctx context.Context, tableName string) (int, error) {
	return s.pullAttempt(ctx, tableName, 1)
}

// pullAttempt is pull with a bounded retry for the (rare) case of the
// central switching table epochs mid-pull.
func (s *Server) pullAttempt(ctx context.Context, tableName string, retries int) (int, error) {
	sm, n, err := s.fetchVerifiedMap(ctx, tableName)
	if err != nil {
		if !isUnsupported(err) {
			return 0, err
		}
		// Pre-sharding central: single-tree replication.
		return s.pullLegacy(ctx, tableName)
	}
	total := n
	rep := &replica{}
	var stores []*storage.PageStore
	for i := range sm.Map.Shards {
		body, store, snap, err := s.pullShardStore(ctx, tableName, i, sm)
		if err != nil {
			return 0, err
		}
		if rep.sch == nil {
			acc, err := digest.New(snap.AccParams.ToDigestParams())
			if err != nil {
				return 0, err
			}
			rep.sch = snap.Schema
			rep.acc = acc
			rep.params = snap.AccParams
		}
		stores = append(stores, store)
		total += body
	}
	// Commits racing the per-shard snapshot loop can leave a store ahead
	// of the map we fetched first; align before publishing so the set's
	// map always pins exactly the data it is served with.
	final, stores, abytes, _, _, err := s.alignShards(ctx, tableName, sm, stores, shardIDs(sm))
	total += abytes
	if err != nil {
		if errors.Is(err, errEpochChanged) && retries > 0 {
			return s.pullAttempt(ctx, tableName, retries-1)
		}
		return 0, err
	}
	if err := s.verifyAlignedStores(ctx, final, stores); err != nil {
		return 0, err
	}
	if err := rep.rebuildSet(final, stores); err != nil {
		return 0, err
	}
	s.setReplica(tableName, rep)
	return total, nil
}

// pullShardStore fetches, verifies, and installs one shard's snapshot.
// Configured upstream peers are tried first (bootstrap catch-up: a
// late-joining edge takes its bulk from the nearest peer and only the
// signed map and key from the central); a peer snapshot must land
// exactly on the verified map's pin, so any failure — including a
// replayed stale snapshot — falls through to the central.
func (s *Server) pullShardStore(ctx context.Context, tableName string, idx int, sm *shardmap.Signed) (int, *storage.PageStore, *wire.Snapshot, error) {
	for _, src := range s.peers.Available() {
		if ctx.Err() != nil {
			break
		}
		n, store, snap, err := s.pullPeerSnapshot(ctx, src, tableName, idx, sm)
		if err != nil {
			s.peerFail(src)
			continue
		}
		return n, store, snap, nil
	}
	req := &wire.ShardSnapshotRequest{Table: tableName, Shard: uint32(idx)}
	body, err := s.central.Call(ctx, wire.MsgShardSnapshotReq, req.Encode(), wire.MsgSnapshotResp, true)
	if err != nil {
		return 0, nil, nil, err
	}
	s.countCentralPull(len(body))
	snap, err := wire.DecodeSnapshot(body)
	if err != nil {
		return 0, nil, nil, err
	}
	// The verified map pins this shard's root digest: a snapshot on the
	// map's version must recover to exactly it. A central commit racing
	// the pull can leave the snapshot ahead of the map — then only the
	// signature's shape is checked here, and the binding against the
	// final map happens in verifyAlignedStores before publish.
	var pinned []byte
	if snap.Epoch == sm.Map.Epoch && snap.Version == sm.Map.Shards[idx].Version {
		pinned = sm.Map.Shards[idx].RootDigest
	}
	if err := s.verifySnapshot(ctx, snap, pinned); err != nil {
		return 0, nil, nil, err
	}
	store, err := installStore(snap)
	if err != nil {
		return 0, nil, nil, err
	}
	s.stats.snapshotsInstalled.Add(1)
	return len(body), store, snap, nil
}

// pullLegacy replicates one table from an unsharded central server.
// Peer bootstrap is central-only on this path: without a signed shard
// map there is no pin to bind a peer-served snapshot to, so a relayed
// legacy snapshot could be replayed — the central stays the sole
// snapshot source and peers only relay (whole-body signed) deltas.
func (s *Server) pullLegacy(ctx context.Context, tableName string) (int, error) {
	body, err := s.central.Call(ctx, wire.MsgSnapshotReq, []byte(tableName), wire.MsgSnapshotResp, true)
	if err != nil {
		return 0, err
	}
	s.countCentralPull(len(body))
	snap, err := wire.DecodeSnapshot(body)
	if err != nil {
		return 0, err
	}
	// No shard map exists to pin the root digest on the legacy path, but
	// the root signature must still be the central key's work; delta
	// verification and client-side VO checks carry freshness from here.
	if err := s.verifySnapshot(ctx, snap, nil); err != nil {
		return 0, err
	}
	rep, err := InstallSnapshot(snap)
	if err != nil {
		return 0, err
	}
	s.setReplica(tableName, rep)
	s.stats.snapshotsInstalled.Add(1)
	return len(body), nil
}

// fetchVerifiedMap pulls the table's signed shard map from the central
// server and signature-checks it before anything trusts its shape.
// Returns the wire size alongside.
func (s *Server) fetchVerifiedMap(ctx context.Context, tableName string) (*shardmap.Signed, int, error) {
	body, err := s.central.Call(ctx, wire.MsgShardMapReq, []byte(tableName), wire.MsgShardMapResp, true)
	if err != nil {
		return nil, 0, err
	}
	sm, err := shardmap.DecodeSigned(body)
	if err != nil {
		return nil, 0, err
	}
	if sm.Map.Table != tableName {
		return nil, 0, fmt.Errorf("edge: shard map names table %q, requested %q", sm.Map.Table, tableName)
	}
	pub, err := s.centralKey(ctx)
	if err != nil {
		return nil, 0, err
	}
	// Route through the verified-signature cache: an idle table serves
	// the same signed map every tick, so steady-state refreshes skip the
	// public-key operation entirely.
	if err := s.verifySigCached(pub, sm.Sig, sm.Map.SigPayload()); err != nil {
		// The central server may have rotated or regenerated its key;
		// refetch once over the authenticated channel before rejecting.
		if pub, err = s.refetchCentralKey(ctx); err != nil {
			return nil, 0, err
		}
		if err := s.verifySigCached(pub, sm.Sig, sm.Map.SigPayload()); err != nil {
			return nil, 0, fmt.Errorf("edge: shard map signature rejected: %w", err)
		}
	}
	s.countCentralPull(len(body))
	return sm, len(body), nil
}

// InstallSnapshot materializes a snapshot into a queryable single-shard
// replica: the pages become the replica's first published version.
// In-flight queries on a previous incarnation of the table keep their
// pinned snapshots and drain naturally.
func InstallSnapshot(snap *wire.Snapshot) (*replica, error) {
	store, err := installStore(snap)
	if err != nil {
		return nil, err
	}
	acc, err := digest.New(snap.AccParams.ToDigestParams())
	if err != nil {
		return nil, err
	}
	rep := &replica{
		sch:    snap.Schema,
		acc:    acc,
		params: snap.AccParams,
	}
	if err := rep.rebuildSet(nil, []*storage.PageStore{store}); err != nil {
		return nil, err
	}
	return rep, nil
}

// installStore builds a shard's page store from a snapshot.
func installStore(snap *wire.Snapshot) (*storage.PageStore, error) {
	if snap.PageSize < storage.MinPageSize {
		return nil, errors.New("edge: snapshot page size too small")
	}
	store, err := storage.NewPageStore(int(snap.PageSize))
	if err != nil {
		return nil, err
	}
	ov := store.Begin()
	defer ov.Abort() // no-op once published
	// Recreate the page address space, then overlay the snapshot pages.
	var maxID storage.PageID
	for _, id := range snap.PageIDs {
		if id > maxID {
			maxID = id
		}
	}
	for ov.NumPages() <= int(maxID) {
		ov.Allocate()
	}
	for i, id := range snap.PageIDs {
		if len(snap.PageData[i]) != int(snap.PageSize) {
			return nil, fmt.Errorf("edge: page %d has %d bytes, want %d", id, len(snap.PageData[i]), snap.PageSize)
		}
		if err := ov.WritePage(id, snap.PageData[i]); err != nil {
			return nil, err
		}
	}
	st := &vbtree.TableState{
		Root:       snap.Root,
		Height:     int(snap.Height),
		RootSig:    sig.Signature(snap.RootSig).Clone(),
		HeapPages:  append([]storage.PageID(nil), snap.HeapPages...),
		KeyVersion: snap.KeyVersion,
		Scheme:     sig.Scheme(snap.Scheme),
		Version:    snap.Version,
		Epoch:      snap.Epoch,
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	ov.Publish(st)
	return store, nil
}

// placeholderPub builds the stand-in public key an edge replica's view is
// configured with. The edge holds no trusted key material: signed digests
// are opaque bytes it serves back to clients, and queries never recover
// them. The view still wants a public key for the VO's key-version stamp
// and the scheme (which decides whether VOs are root-anchored Merkle
// proofs), so the placeholder carries only those.
func placeholderPub(keyVersion uint32, scheme sig.Scheme) *sig.PublicKey {
	return &sig.PublicKey{
		N:       new(big.Int).Lsh(big.NewInt(1), 512),
		E:       big.NewInt(65537),
		Version: keyVersion,
		Scheme:  scheme,
	}
}

// applyDelta builds the successor snapshot from a verified delta — the
// changed pages written into a copy-on-write overlay, the tree re-anchored
// at the delta's root metadata — and publishes it into the store with one
// atomic swap. Queries in flight keep reading their pinned version; they
// never observe a half-applied delta. ref is the Table value the delta
// must carry (the shard ref for partitioned tables). The caller
// republishes the replica's tableSet afterwards.
func applyDelta(store *storage.PageStore, d *wire.Delta, ref string) error {
	ov := store.Begin()
	defer ov.Abort() // no-op once published
	st, ok := ov.Base().Meta().(*vbtree.TableState)
	if !ok {
		return errors.New("edge: replica has no published version")
	}
	if d.Table != ref {
		return fmt.Errorf("edge: delta is for %q, want %q", d.Table, ref)
	}
	if d.Epoch != st.Epoch {
		return wire.StaleReplica(d.Table, fmt.Sprintf("edge: delta from epoch %d, replica version history from %d", d.Epoch, st.Epoch))
	}
	if d.FromVersion != st.Version {
		return wire.StaleReplica(d.Table, fmt.Sprintf("edge: delta starts at version %d, replica at %d", d.FromVersion, st.Version))
	}
	pageSize := store.PageSize()
	// Validate every page before staging anything; a bad delta must not
	// publish at all.
	for i, id := range d.PageIDs {
		if len(d.PageData[i]) != pageSize {
			return fmt.Errorf("edge: delta page %d has %d bytes, want %d", id, len(d.PageData[i]), pageSize)
		}
		if id == 0 || int(id) >= int(d.NumPages) {
			return fmt.Errorf("edge: delta page %d outside advertised page count %d", id, d.NumPages)
		}
	}
	next := &vbtree.TableState{
		Root:       d.Root,
		Height:     int(d.Height),
		RootSig:    sig.Signature(d.RootSig).Clone(),
		HeapPages:  append([]storage.PageID(nil), d.HeapPages...),
		KeyVersion: d.KeyVersion,
		Scheme:     sig.Scheme(d.Scheme),
		Version:    d.ToVersion,
		Epoch:      st.Epoch,
	}
	if err := next.Validate(); err != nil {
		return err
	}
	for ov.NumPages() < int(d.NumPages) {
		ov.Allocate()
	}
	for i, id := range d.PageIDs {
		if err := ov.WritePage(id, d.PageData[i]); err != nil {
			return err
		}
	}
	ov.Publish(next)
	return nil
}

// RefreshStat reports how one table was brought up to date.
type RefreshStat struct {
	Table string
	// Mode is "delta", "snapshot" (first pull, fallback, or any shard
	// resnapshotted), or "noop" (replica already current).
	Mode string
	// Bytes is the wire size of the response bodies that carried the
	// state (all shards combined).
	Bytes                  int
	FromVersion, ToVersion uint64
	// ShardsRefreshed is how many shards actually shipped pages this
	// refresh (0 for noop; 1 for unsharded tables that moved).
	ShardsRefreshed int
}

// RefreshAll brings every replica up to date, preferring signed deltas
// and falling back to full snapshots for new tables or replicas that
// have fallen out of the central server's retained changelog. Tables are
// refreshed independently: one failing table does not starve the rest,
// and the stats of the tables that did refresh are returned alongside
// the joined errors. Refreshes never block queries: each builds the
// successor set off to the side and publishes it atomically.
func (s *Server) RefreshAll(ctx context.Context) ([]RefreshStat, error) {
	body, err := s.central.Call(ctx, wire.MsgListTablesReq, nil, wire.MsgListTablesResp, true)
	if err != nil {
		return nil, err
	}
	names, err := wire.DecodeStringList(body)
	if err != nil {
		return nil, err
	}
	stats := make([]RefreshStat, 0, len(names))
	var errs []error
	for _, name := range names {
		// A cancelled refresh stops here instead of accumulating one dial
		// error per remaining table.
		if cerr := ctx.Err(); cerr != nil {
			errs = append(errs, cerr)
			break
		}
		st, err := s.Refresh(ctx, name)
		if err != nil {
			errs = append(errs, fmt.Errorf("edge: refreshing %q: %w", name, err))
			continue
		}
		stats = append(stats, st)
	}
	return stats, errors.Join(errs...)
}

// Refresh brings one replica up to date (per-shard deltas if possible,
// snapshots otherwise) and reports what was transferred.
func (s *Server) Refresh(ctx context.Context, tableName string) (RefreshStat, error) {
	rep := s.replica(tableName)
	if rep == nil {
		n, err := s.pull(ctx, tableName)
		if err != nil {
			return RefreshStat{}, err
		}
		return s.statFor(tableName, "snapshot", n, 0, 1), nil
	}
	rep.refreshMu.Lock()
	defer rep.refreshMu.Unlock()
	cur := rep.set.Load()
	if cur == nil {
		// Displaced replica (a concurrent pull swapped in a successor);
		// the registry's current replica will serve.
		return s.statFor(tableName, "noop", 0, 0, 0), nil
	}
	if cur.smap == nil {
		return s.refreshLegacy(ctx, tableName, rep, cur)
	}
	return s.refreshSharded(ctx, tableName, rep, cur)
}

// errEpochChanged reports a shard map from a different table
// incarnation (or a repartition) observed mid-alignment.
var errEpochChanged = errors.New("edge: table epoch or partition changed")

// maxAlignAttempts bounds the map-refetch loop when central commits
// race the refresh; each attempt converges unless yet another commit
// lands inside it, so a small bound suffices and a saturated central
// simply retries on the next tick (the old consistent set keeps
// serving).
const maxAlignAttempts = 4

// refreshSharded refreshes a partitioned replica: one signed map fetch,
// a delta per stale shard (aligned so the map pins exactly the data),
// then one atomic set publish.
func (s *Server) refreshSharded(ctx context.Context, tableName string, rep *replica, cur *tableSet) (RefreshStat, error) {
	next, n, err := s.fetchVerifiedMap(ctx, tableName)
	if err != nil {
		return RefreshStat{}, err
	}
	stat := RefreshStat{Table: tableName, Mode: "noop", Bytes: n,
		FromVersion: cur.smap.Map.MapVersion}
	stores := make([]*storage.PageStore, len(cur.shards))
	for i, sr := range cur.shards {
		stores[i] = sr.store
	}
	final, stores, bytes, refreshed, snapshotted, err := s.alignShards(ctx, tableName, next, stores, shardIDs(cur.smap))
	stat.Bytes += bytes
	if errors.Is(err, errEpochChanged) {
		// Different incarnation (or repartitioned): this replica's
		// history is dead. Flag it so queries report staleness, then
		// install a fresh replica from scratch.
		rep.diverged.Store(true)
		pn, perr := s.pull(ctx, tableName)
		if perr != nil {
			return RefreshStat{}, perr
		}
		stat.Mode = "snapshot"
		stat.Bytes += pn
		stat.ShardsRefreshed = len(next.Map.Shards)
		s.stats.refreshesApplied.Add(1)
		return stat, nil
	}
	if err != nil {
		return RefreshStat{}, err
	}
	stat.ToVersion = final.Map.MapVersion
	stat.ShardsRefreshed = refreshed
	switch {
	case refreshed == 0:
		stat.Mode = "noop"
	case snapshotted:
		stat.Mode = "snapshot"
	default:
		stat.Mode = "delta"
	}
	// One atomic publish: the new map and the shard snapshots it pins
	// become visible together, so a query can never pair an answer with
	// a map from a different refresh generation.
	if err := s.verifyAlignedStores(ctx, final, stores); err != nil {
		return RefreshStat{}, err
	}
	if err := rep.rebuildSet(final, stores); err != nil {
		return RefreshStat{}, err
	}
	if stat.ShardsRefreshed > 0 {
		s.stats.refreshesApplied.Add(1)
	}
	return stat, nil
}

// shardIDs extracts a map's stable shard-identity sequence (all zeros
// on legacy maps that predate epoch-versioned partitions).
func shardIDs(sm *shardmap.Signed) []uint64 {
	ids := make([]uint64, len(sm.Map.Shards))
	for i := range sm.Map.Shards {
		ids[i] = sm.Map.Shards[i].ID
	}
	return ids
}

// hasShardIDs reports whether every shard carries a nonzero stable ID —
// i.e. the map speaks the epoch-versioned partition protocol.
func hasShardIDs(ids []uint64) bool {
	for _, id := range ids {
		if id == 0 {
			return false
		}
	}
	return len(ids) > 0
}

func sameIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// remapStores rebinds a store slice laid out for the partition
// identified by ids onto sm's partition, matching by stable shard ID:
// shards that survived the transition carry their stores (and pinned
// pages) over untouched, shards the transition created are
// snapshot-installed, and relay cache entries for positions whose
// identity changed are dropped so peers are never served a dead
// shard's deltas under a live position. Both sides must speak the
// ID protocol (hasShardIDs) — callers gate on that.
func (s *Server) remapStores(ctx context.Context, tableName string, sm *shardmap.Signed, stores []*storage.PageStore, ids []uint64) (outStores []*storage.PageStore, bytes int, err error) {
	byID := make(map[uint64]*storage.PageStore, len(ids))
	for i, id := range ids {
		if i < len(stores) {
			byID[id] = stores[i]
		}
	}
	mapIDs := shardIDs(sm)
	outStores = make([]*storage.PageStore, len(mapIDs))
	for i, id := range mapIDs {
		if st, ok := byID[id]; ok {
			outStores[i] = st
			continue
		}
		n, store, _, err := s.pullShardStore(ctx, tableName, i, sm)
		if err != nil {
			return nil, bytes, err
		}
		outStores[i] = store
		bytes += n
	}
	// Positions whose identity changed or vanished may have cached
	// deltas for the retired shard; those must never be relayed as the
	// new occupant's history.
	for i, id := range ids {
		if i >= len(mapIDs) || mapIDs[i] != id {
			s.relay.Drop(wire.ShardRef(tableName, uint32(i)))
		}
	}
	s.stats.reshardsApplied.Add(1)
	return outStores, bytes, nil
}

// alignShards brings every store to exactly the shard versions sm pins,
// refetching the map (bounded) when a central commit racing the refresh
// leaves a store ahead of the map — published sets must never pair a
// map with data from a different version. Deltas are negotiated from
// each store's HEAD (not the published set), so a refresh that failed
// partway resumes cleanly instead of wedging on version mismatches.
//
// ids is the stable shard-ID sequence of the partition the stores were
// laid out for. When sm describes a different partition of the same
// table incarnation (an online split or merge), stores are re-bound by
// ID — surviving shards carry over, new shards snapshot-install — so a
// reshard never discards unaffected state. Legacy maps without IDs
// keep the old behavior: any count change is an epoch change. Returns
// the map the stores ended aligned to and the (possibly resized)
// store slice.
func (s *Server) alignShards(ctx context.Context, tableName string, sm *shardmap.Signed, stores []*storage.PageStore, ids []uint64) (final *shardmap.Signed, outStores []*storage.PageStore, bytes, refreshed int, snapshotted bool, err error) {
	for attempt := 0; ; attempt++ {
		if mapIDs := shardIDs(sm); hasShardIDs(mapIDs) && hasShardIDs(ids) {
			if !sameIDs(mapIDs, ids) {
				newStores, n, err := s.remapStores(ctx, tableName, sm, stores, ids)
				if err != nil {
					return nil, stores, bytes, refreshed, snapshotted, err
				}
				stores = newStores
				ids = mapIDs
				bytes += n
				refreshed++
				snapshotted = true
			}
		} else if len(sm.Map.Shards) != len(stores) {
			return nil, stores, bytes, refreshed, snapshotted, fmt.Errorf("%w: map has %d shards, replica %d", errEpochChanged, len(sm.Map.Shards), len(stores))
		}
		aligned := true
		for i := range stores {
			head, err := storeState(stores[i])
			if err != nil {
				return nil, stores, bytes, refreshed, snapshotted, err
			}
			if head.Epoch != sm.Map.Epoch {
				return nil, stores, bytes, refreshed, snapshotted, fmt.Errorf("%w: map epoch %d, shard %d epoch %d", errEpochChanged, sm.Map.Epoch, i, head.Epoch)
			}
			if sm.Map.Shards[i].Version > head.Version {
				n, mode, store, err := s.refreshShard(ctx, tableName, stores[i], i, head, sm)
				if err != nil {
					return nil, stores, bytes, refreshed, snapshotted, err
				}
				stores[i] = store
				bytes += n
				refreshed++
				snapshotted = snapshotted || mode == "snapshot"
				if head, err = storeState(stores[i]); err != nil {
					return nil, stores, bytes, refreshed, snapshotted, err
				}
			}
			if head.Version != sm.Map.Shards[i].Version {
				// The store ended ahead of this map (a commit raced us):
				// a newer signed map pinning the head exists — fetch it.
				aligned = false
			}
		}
		if aligned {
			return sm, stores, bytes, refreshed, snapshotted, nil
		}
		if attempt >= maxAlignAttempts {
			return nil, stores, bytes, refreshed, snapshotted, fmt.Errorf("edge: central commits kept racing the refresh of %q; retrying next tick", tableName)
		}
		next, n, err := s.fetchVerifiedMap(ctx, tableName)
		if err != nil {
			return nil, stores, bytes, refreshed, snapshotted, err
		}
		bytes += n
		sm = next
	}
}

// refreshShard brings one shard's store up to date via delta, falling
// back to a shard snapshot (which replaces the store). Configured
// upstream peers are drained first — sm is the central-verified map
// naming the target, so a peer either makes verified forward progress
// toward it or is failed over — and the central finishes whatever the
// peers could not cover.
func (s *Server) refreshShard(ctx context.Context, tableName string, store *storage.PageStore, idx int, st *vbtree.TableState, sm *shardmap.Signed) (int, string, *storage.PageStore, error) {
	ref := wire.ShardRef(tableName, uint32(idx))
	var total int
	var peerMode string
	if s.peers.Len() > 0 {
		n, pmode, fresh, err := s.refreshShardFromPeers(ctx, tableName, store, idx, st, sm)
		total += n
		if err != nil {
			return 0, "", nil, err
		}
		if pmode != "" {
			peerMode, store = pmode, fresh
			if st, err = storeState(store); err != nil {
				return 0, "", nil, err
			}
		}
		if st.Version >= sm.Map.Shards[idx].Version {
			return total, peerMode, store, nil
		}
	}
	req := &wire.ShardDeltaRequest{Table: tableName, Shard: uint32(idx), FromVersion: st.Version, Epoch: st.Epoch}
	body, err := s.central.Call(ctx, wire.MsgShardDeltaReq, req.Encode(), wire.MsgDeltaResp, true)
	if err != nil {
		return 0, "", nil, err
	}
	s.countCentralPull(len(body))
	d, err := wire.DecodeDelta(body)
	if err != nil {
		return 0, "", nil, err
	}
	if err := s.verifyDelta(ctx, d, body); err != nil {
		return 0, "", nil, err
	}
	if d.SnapshotNeeded {
		sreq := &wire.ShardSnapshotRequest{Table: tableName, Shard: uint32(idx)}
		sbody, err := s.central.Call(ctx, wire.MsgShardSnapshotReq, sreq.Encode(), wire.MsgSnapshotResp, true)
		if err != nil {
			return 0, "", nil, err
		}
		s.countCentralPull(len(sbody))
		snap, err := wire.DecodeSnapshot(sbody)
		if err != nil {
			return 0, "", nil, err
		}
		// The delta is whole-body signed and already verified, and signing
		// is deterministic: when it carries root metadata and the fallback
		// snapshot lands on its target version, the root signature must be
		// byte-identical. Otherwise (SnapshotNeeded deltas omit the root,
		// or the central committed again) the signature is shape-checked
		// now and bound to the final map in verifyAlignedStores.
		if len(d.RootSig) > 0 && snap.Version == d.ToVersion && snap.Epoch == d.Epoch {
			if !bytes.Equal(snap.RootSig, d.RootSig) {
				return 0, "", nil, errors.New("edge: fallback snapshot root signature does not match the verified delta")
			}
		} else if err := s.verifySnapshot(ctx, snap, nil); err != nil {
			return 0, "", nil, err
		}
		fresh, err := installStore(snap)
		if err != nil {
			return 0, "", nil, err
		}
		s.relay.Drop(ref)
		s.stats.snapshotsInstalled.Add(1)
		return total + len(body) + len(sbody), "snapshot", fresh, nil
	}
	if d.ToVersion == st.Version {
		mode := "noop"
		if peerMode != "" {
			mode = peerMode
		}
		return total + len(body), mode, store, nil
	}
	if err := applyDelta(store, d, ref); err != nil {
		return 0, "", nil, err
	}
	s.relay.Put(ref, d.Epoch, d.FromVersion, d.ToVersion, body)
	s.stats.deltasApplied.Add(1)
	mode := "delta"
	if peerMode == "snapshot" {
		mode = "snapshot"
	}
	return total + len(body), mode, store, nil
}

// verifyDelta signature-checks a delta against the central key,
// refetching the key once on mismatch (the central may have rotated).
func (s *Server) verifyDelta(ctx context.Context, d *wire.Delta, body []byte) error {
	payload, err := d.SigPayloadOfBody(body)
	if err != nil {
		return err
	}
	pub, err := s.centralKey(ctx)
	if err != nil {
		return err
	}
	if err := pub.Verify(d.Sig, payload); err != nil {
		if pub, err = s.refetchCentralKey(ctx); err != nil {
			return err
		}
		if err := pub.Verify(d.Sig, payload); err != nil {
			return fmt.Errorf("edge: delta signature rejected: %w", err)
		}
	}
	return nil
}

// verifySnapshot anchors a pulled snapshot in the central key before any
// of its pages are installed, closing the asymmetry with the delta path
// (deltas are whole-body signed and checked by verifyDelta; snapshots
// carry the tree's signed root digest). The root signature must recover
// to a digest of the right shape under the central key — refetching the
// key once on rejection, like verifyDelta — and when pinned is non-nil
// (a root digest vouched for by already-verified material, such as the
// signed shard map) the recovered digest must equal it.
func (s *Server) verifySnapshot(ctx context.Context, snap *wire.Snapshot, pinned []byte) error {
	acc, err := digest.New(snap.AccParams.ToDigestParams())
	if err != nil {
		return err
	}
	pub, err := s.centralKey(ctx)
	if err != nil {
		return err
	}
	if recoverPinned(pub, acc, snap.RootSig, pinned) == nil {
		return nil
	}
	if pub, err = s.refetchCentralKey(ctx); err != nil {
		return err
	}
	if err := recoverPinned(pub, acc, snap.RootSig, pinned); err != nil {
		return fmt.Errorf("edge: snapshot root signature rejected: %w", err)
	}
	return nil
}

// recoverPinned checks a root signature under pub — and binds it to a
// pinned digest, when the caller holds one. RSA schemes recover the
// digest from the signature (message recovery), so shape and pin can
// both be checked even without a pin in hand. Ed25519 has no recovery:
// with a pin the signature is verified detached against it; without one
// only the signature's length can be checked here, and the binding
// happens in verifyAlignedStores against the signed shard map before
// the store is published.
func recoverPinned(pub *sig.PublicKey, acc *digest.Accumulator, rootSig, pinned []byte) error {
	if pub.Scheme == sig.SchemeEd25519 {
		if pinned != nil {
			return pub.Verify(sig.Signature(rootSig), pinned)
		}
		if len(rootSig) != pub.Len() {
			return fmt.Errorf("root signature is %d bytes, want %d", len(rootSig), pub.Len())
		}
		return nil
	}
	u, err := pub.Recover(sig.Signature(rootSig))
	if err != nil {
		return err
	}
	if len(u) != acc.Len() {
		return fmt.Errorf("recovered %d bytes, want a %d-byte digest", len(u), acc.Len())
	}
	if pinned != nil && !bytes.Equal(u, pinned) {
		return errors.New("root digest does not match its verified pin")
	}
	return nil
}

// verifyAlignedStores cross-checks the shard stores against the map they
// are about to be published with: each store's root signature must
// recover, under the central key, to exactly the root digest the
// verified map pins for that shard. One public-exponent RSA operation
// per shard — the cost the central itself pays per commit for
// Tree.RootDigest. This is the binding pullShardStore defers when a
// racing commit leaves a snapshot ahead of the map it was pulled with.
func (s *Server) verifyAlignedStores(ctx context.Context, sm *shardmap.Signed, stores []*storage.PageStore) error {
	pub, err := s.centralKey(ctx)
	if err != nil {
		return err
	}
	for i, store := range stores {
		st, err := storeState(store)
		if err != nil {
			return err
		}
		if err := s.verifySigCached(pub, st.RootSig, sm.Map.Shards[i].RootDigest); err != nil {
			// The central may have rotated keys since the cache was
			// filled; retry once with a fresh key before condemning.
			if pub, err = s.refetchCentralKey(ctx); err != nil {
				return err
			}
			if err := s.verifySigCached(pub, st.RootSig, sm.Map.Shards[i].RootDigest); err != nil {
				return fmt.Errorf("edge: shard %d of %q: root signature does not authenticate the digest its signed map pins", i, sm.Map.Table)
			}
		}
	}
	return nil
}

// edgeSigCacheMax bounds the verified-signature cache: refresh ticks
// re-check the same (root signature, root digest) bindings every round
// while a shard is quiet, so a small cache absorbs the steady state.
const edgeSigCacheMax = 256

// verifySigCached checks that sg authenticates payload under pub (works
// for every scheme: RSA verifies by recovery-and-compare, Ed25519
// detached), consulting a bounded cache of previously-proven bindings
// first. Entries are keyed by key version + signature bytes and only
// written after a successful verification.
func (s *Server) verifySigCached(pub *sig.PublicKey, sg sig.Signature, payload []byte) error {
	key := string(appendCacheKey(pub.Version, sg))
	s.sigCacheMu.Lock()
	cached, ok := s.sigCache[key]
	s.sigCacheMu.Unlock()
	if ok && bytes.Equal(cached, payload) {
		s.stats.sigCacheHits.Add(1)
		return nil
	}
	s.stats.sigCacheMisses.Add(1)
	if err := pub.Verify(sg, payload); err != nil {
		return err
	}
	s.sigCacheMu.Lock()
	if s.sigCache == nil {
		s.sigCache = make(map[string][]byte, edgeSigCacheMax)
	}
	if len(s.sigCache) >= edgeSigCacheMax {
		for k := range s.sigCache {
			delete(s.sigCache, k)
			if len(s.sigCache) < edgeSigCacheMax {
				break
			}
		}
	}
	s.sigCache[key] = append([]byte(nil), payload...)
	s.sigCacheMu.Unlock()
	return nil
}

func appendCacheKey(version uint32, sg sig.Signature) []byte {
	out := make([]byte, 0, 4+len(sg))
	out = append(out, byte(version>>24), byte(version>>16), byte(version>>8), byte(version))
	return append(out, sg...)
}

// refreshLegacy refreshes a single-tree replica against a pre-sharding
// central server. Upstream peers are drained for relayed deltas first,
// but the round ALWAYS ends with a central delta exchange (possibly a
// noop): on this path no signed map names the true head, so the
// central's signed answer is the freshness statement a peer cannot
// fabricate.
func (s *Server) refreshLegacy(ctx context.Context, tableName string, rep *replica, cur *tableSet) (RefreshStat, error) {
	// Negotiate from the store's head, not the published set: a refresh
	// that applied its delta but failed before republishing must resume
	// from where the store actually is.
	st, err := storeState(cur.shards[0].store)
	if err != nil {
		return RefreshStat{}, err
	}
	origFrom := st.Version
	var peerBytes int
	var peerApplied bool
	if s.peers.Len() > 0 {
		if peerBytes, peerApplied, st, err = s.drainLegacyPeerDeltas(ctx, tableName, cur.shards[0].store, st); err != nil {
			return RefreshStat{}, err
		}
	}
	from := st.Version
	req := &wire.DeltaRequest{Table: tableName, FromVersion: from, Epoch: st.Epoch}
	body, err := s.central.Call(ctx, wire.MsgDeltaReq, req.Encode(), wire.MsgDeltaResp, true)
	if err != nil {
		return RefreshStat{}, err
	}
	s.countCentralPull(len(body))
	d, err := wire.DecodeDelta(body)
	if err != nil {
		return RefreshStat{}, err
	}
	if err := s.verifyDelta(ctx, d, body); err != nil {
		return RefreshStat{}, err
	}
	if d.Epoch != st.Epoch {
		// The central has a different table incarnation: this replica's
		// history is dead. Flag it so queries report staleness instead of
		// silently serving the old incarnation; a successful snapshot
		// pull below installs a fresh (unflagged) replica.
		rep.diverged.Store(true)
	}
	if d.SnapshotNeeded {
		n, err := s.pull(ctx, tableName)
		if err != nil {
			return RefreshStat{}, err
		}
		s.relay.Drop(tableName)
		s.stats.refreshesApplied.Add(1)
		return s.statFor(tableName, "snapshot", peerBytes+n, origFrom, 1), nil
	}
	if d.ToVersion == from {
		if cur.shards[0].state.Version != from {
			// The store ran ahead of the published set (a previous refresh
			// failed between apply and publish, or peers just applied
			// deltas above); catch the set up even though the central had
			// no new delta.
			if err := rep.rebuildSet(nil, []*storage.PageStore{cur.shards[0].store}); err != nil {
				return RefreshStat{}, err
			}
		}
		mode := "noop"
		if peerApplied {
			mode = "delta"
			s.stats.refreshesApplied.Add(1)
		}
		return RefreshStat{Table: tableName, Mode: mode, Bytes: peerBytes + len(body), FromVersion: origFrom, ToVersion: from, ShardsRefreshed: boolToInt(peerApplied)}, nil
	}
	if err := applyDelta(cur.shards[0].store, d, tableName); err != nil {
		return RefreshStat{}, err
	}
	if err := rep.rebuildSet(nil, []*storage.PageStore{cur.shards[0].store}); err != nil {
		return RefreshStat{}, err
	}
	s.relay.Put(tableName, d.Epoch, d.FromVersion, d.ToVersion, body)
	s.stats.deltasApplied.Add(1)
	s.stats.refreshesApplied.Add(1)
	return RefreshStat{Table: tableName, Mode: "delta", Bytes: peerBytes + len(body), FromVersion: origFrom, ToVersion: d.ToVersion, ShardsRefreshed: 1}, nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func (s *Server) statFor(tableName, mode string, bytes int, from uint64, shards int) RefreshStat {
	st := RefreshStat{Table: tableName, Mode: mode, Bytes: bytes, FromVersion: from, ShardsRefreshed: shards}
	if rep := s.replica(tableName); rep != nil {
		if set := rep.set.Load(); set != nil {
			if set.smap != nil {
				st.ToVersion = set.smap.Map.MapVersion
				st.ShardsRefreshed = len(set.shards)
			} else {
				st.ToVersion = set.shards[0].state.Version
			}
		}
	}
	return st
}

// centralKey fetches (once) the central server's public key over the
// replication connection — the edge's authenticated channel — so deltas
// and shard maps can be signature-checked before they touch a replica.
func (s *Server) centralKey(ctx context.Context) (*sig.PublicKey, error) {
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	if s.centralPub != nil {
		return s.centralPub, nil
	}
	return s.fetchCentralKeyLocked(ctx)
}

// refetchCentralKey discards the cached key and fetches the current one
// (the central server may have rotated keys since the cache was filled).
func (s *Server) refetchCentralKey(ctx context.Context) (*sig.PublicKey, error) {
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	s.centralPub = nil
	return s.fetchCentralKeyLocked(ctx)
}

func (s *Server) fetchCentralKeyLocked(ctx context.Context) (*sig.PublicKey, error) {
	body, err := s.central.Call(ctx, wire.MsgPubKeyReq, nil, wire.MsgPubKeyResp, true)
	if err != nil {
		return nil, err
	}
	var pk sig.PublicKey
	if err := pk.UnmarshalBinary(body); err != nil {
		return nil, err
	}
	s.centralPub = &pk
	return s.centralPub, nil
}

// Version reports a replica's update version (the shard-map version for
// partitioned tables).
func (s *Server) Version(tableName string) (uint64, error) {
	rep := s.replica(tableName)
	if rep == nil {
		return 0, wire.UnknownTable("edge", tableName)
	}
	set := rep.set.Load()
	if set == nil {
		return 0, errors.New("edge: replica has no published set")
	}
	if set.smap != nil {
		return set.smap.Map.MapVersion, nil
	}
	return set.shards[0].state.Version, nil
}

// NumShards reports how many shards a replica carries.
func (s *Server) NumShards(tableName string) (int, error) {
	rep := s.replica(tableName)
	if rep == nil {
		return 0, wire.UnknownTable("edge", tableName)
	}
	set := rep.set.Load()
	if set == nil {
		return 0, errors.New("edge: replica has no published set")
	}
	return len(set.shards), nil
}

// SignedShardMap returns the verified shard map the edge would serve a
// client for this table (nil error only for partitioned tables).
func (s *Server) SignedShardMap(tableName string) (*shardmap.Signed, error) {
	rep := s.replica(tableName)
	if rep == nil {
		return nil, wire.UnknownTable("edge", tableName)
	}
	set := rep.set.Load()
	if set == nil || set.smap == nil {
		return nil, wire.NotSharded("edge", tableName, "table replicated from an unsharded central server")
	}
	return set.smap, nil
}

// RunQuery executes a compiled query against a single-tree replica. The
// path is lock-free: it pins the replica's current snapshot, traverses
// it, and releases the pin. Partitioned tables answer with a typed
// unsupported error steering the client to the scatter-gather path.
func (s *Server) RunQuery(ctx context.Context, tableName string, q vbtree.Query) (*vo.ResultSet, *vo.VO, error) {
	rep := s.replica(tableName)
	if rep == nil {
		return nil, nil, wire.UnknownTable("edge", tableName)
	}
	if set := rep.set.Load(); set != nil && len(set.shards) != 1 {
		return nil, nil, wire.NotSharded("edge", tableName,
			fmt.Sprintf("table %q is range-partitioned into %d shards; use shard queries", tableName, len(set.shards)))
	}
	rs, w, _, err := s.runShardQuery(ctx, tableName, rep, 0, q)
	return rs, w, err
}

// RunShardQuery executes a compiled query against one shard, with the VO
// anchored at the shard's root so clients can bind it to the signed
// shard map returned alongside.
func (s *Server) RunShardQuery(ctx context.Context, tableName string, idx uint32, q vbtree.Query) (*vo.ResultSet, *vo.VO, *shardmap.Signed, error) {
	rep := s.replica(tableName)
	if rep == nil {
		return nil, nil, nil, wire.UnknownTable("edge", tableName)
	}
	q.AnchorRoot = true
	return s.runShardQuery(ctx, tableName, rep, int(idx), q)
}

func (s *Server) runShardQuery(ctx context.Context, tableName string, rep *replica, idx int, q vbtree.Query) (*vo.ResultSet, *vo.VO, *shardmap.Signed, error) {
	if rep.diverged.Load() {
		return nil, nil, nil, wire.StaleReplica(tableName,
			fmt.Sprintf("edge: replica of %q descends from a dead table incarnation; refresh must install a snapshot first", tableName))
	}
	set, sr, err := rep.pinShard(idx)
	if err != nil {
		if errors.Is(err, errShardRange) {
			return nil, nil, nil, wire.ShardMoved(tableName, err.Error())
		}
		return nil, nil, nil, err
	}
	defer sr.snap.Release()
	v, err := sr.state.ViewOver(sr.snap, rep.sch, rep.acc, placeholderPub(sr.state.KeyVersion, sr.state.Scheme))
	if err != nil {
		return nil, nil, nil, err
	}
	rs, w, err := v.RunQuery(ctx, q)
	if err != nil {
		return nil, nil, nil, err
	}
	s.stats.queriesServed.Add(1)
	s.stats.voBytes.Add(uint64(w.WireSize()))
	if tp := s.tamper.Load(); tp != nil && *tp != nil {
		if err := (*tp)(rs, w); err != nil {
			return nil, nil, nil, err
		}
	}
	return rs, w, set.smap, nil
}

// Schema returns a replica's schema.
func (s *Server) Schema(tableName string) (*schema.Schema, error) {
	rep := s.replica(tableName)
	if rep == nil {
		return nil, wire.UnknownTable("edge", tableName)
	}
	return rep.sch, nil
}

// Serve accepts client connections until the listener closes.
func (s *Server) Serve(l net.Listener) {
	s.lnMu.Lock()
	if s.closed {
		s.lnMu.Unlock()
		l.Close()
		return
	}
	s.listeners = append(s.listeners, l)
	s.lnMu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		if !s.conns.Add(conn) {
			conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.conns.Remove(conn)
			defer conn.Close()
			s.handleConn(conn)
		}()
	}
}

// Close stops serving (listeners and live client connections) and drops
// the central connection, reporting a connection that failed to close
// cleanly. Close is idempotent.
func (s *Server) Close() error {
	s.closeOnce.Do(func() { s.closeErr = s.doClose() })
	return s.closeErr
}

func (s *Server) doClose() error {
	s.baseCancel()
	s.lnMu.Lock()
	s.closed = true
	for _, l := range s.listeners {
		l.Close()
	}
	s.listeners = nil
	s.lnMu.Unlock()
	s.conns.CloseAll()
	s.wg.Wait()
	var errs []error
	if err := s.central.Close(); err != nil {
		errs = append(errs, fmt.Errorf("edge: closing central connection: %w", err))
	}
	if err := s.peers.Close(); err != nil {
		errs = append(errs, fmt.Errorf("edge: closing peer connections: %w", err))
	}
	return errors.Join(errs...)
}

// helloCaps is the capability bit set this edge advertises in Hello
// exchanges (both as a server and toward its upstreams).
func (s *Server) helloCaps() uint32 {
	if s.opts.ServePeers {
		return wire.CapPeerServe
	}
	return 0
}

// handleConn negotiates the protocol with the client and dispatches its
// requests — concurrently, on multiplexed v2 sessions — until it
// disconnects or idles out.
func (s *Server) handleConn(conn net.Conn) {
	rpc.ServeConn(conn, s.dispatch, rpc.ServeOptions{
		IdleTimeout:   s.opts.IdleTimeout,
		MaxConcurrent: s.opts.MaxConcurrent,
		BaseContext:   s.baseCtx,
		Capabilities:  s.helloCaps(),
	})
}

// dispatch executes one client request and returns the response frame.
// It must be safe for concurrent use: v2 connections run requests in
// parallel (queries read pinned snapshots, so they interleave freely
// with delta application). ctx is the connection's context — cancelled
// when the client disconnects, which aborts traversal mid-query.
func (s *Server) dispatch(ctx context.Context, mt wire.MsgType, body []byte) (wire.MsgType, []byte, error) {
	switch mt {
	case wire.MsgListTablesReq:
		return wire.MsgListTablesResp, wire.EncodeStringList(s.Tables()), nil

	case wire.MsgSchemaReq:
		rep := s.replica(string(body))
		if rep == nil {
			return 0, nil, wire.UnknownTable("edge", string(body))
		}
		set := rep.set.Load()
		if set == nil {
			return 0, nil, errors.New("edge: replica has no published set")
		}
		resp := &wire.SchemaResponse{
			Schema:     rep.sch,
			AccParams:  rep.params,
			KeyVersion: set.shards[0].state.KeyVersion,
			Scheme:     uint8(set.shards[0].state.Scheme),
		}
		return wire.MsgSchemaResp, resp.Encode(), nil

	case wire.MsgShardMapReq:
		sm, err := s.SignedShardMap(string(body))
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgShardMapResp, s.tamperedMap(sm).Encode(), nil

	case wire.MsgQueryReq:
		req, err := wire.DecodeQueryRequest(body)
		if err != nil {
			return 0, nil, err
		}
		q, err := s.compile(req)
		if err != nil {
			return 0, nil, err
		}
		rs, w, err := s.RunQuery(ctx, req.Table, q)
		if err != nil {
			return 0, nil, err
		}
		resp := &wire.QueryResponse{Result: rs, VO: w}
		return wire.MsgQueryResp, resp.Encode(), nil

	case wire.MsgShardQueryReq:
		req, err := wire.DecodeShardQueryRequest(body)
		if err != nil {
			return 0, nil, err
		}
		q, err := s.compile(req.Query)
		if err != nil {
			return 0, nil, err
		}
		rs, w, sm, err := s.RunShardQuery(ctx, req.Query.Table, req.Shard, q)
		if err != nil {
			return 0, nil, err
		}
		if sm == nil {
			return 0, nil, wire.NotSharded("edge", req.Query.Table, "table replicated from an unsharded central server")
		}
		resp := &wire.ShardQueryResponse{
			Resp:      &wire.QueryResponse{Result: rs, VO: w},
			SignedMap: s.tamperedMap(sm).Encode(),
		}
		return wire.MsgShardQueryResp, resp.Encode(), nil

	case wire.MsgSnapshotReq, wire.MsgShardSnapshotReq, wire.MsgDeltaReq, wire.MsgShardDeltaReq:
		// The peer distribution tier: edges replicating the same tables
		// pull their refresh traffic from here (see peers.go).
		return s.servePeer(ctx, mt, body)

	default:
		return 0, nil, wire.Unsupported("edge", mt)
	}
}

// tamperedMap routes a served map through the compromised-edge hook (on
// a deep copy — the canonical map stays intact for refreshes).
func (s *Server) tamperedMap(sm *shardmap.Signed) *shardmap.Signed {
	if tp := s.mapTamper.Load(); tp != nil && *tp != nil {
		return (*tp)(sm.Clone())
	}
	return sm
}

// compile resolves a wire query request against the table's schema.
func (s *Server) compile(req *wire.QueryRequest) (vbtree.Query, error) {
	rep := s.replica(req.Table)
	if rep == nil {
		return vbtree.Query{}, wire.UnknownTable("edge", req.Table)
	}
	spec := query.Spec{Predicates: req.Predicates}
	if !req.ProjectAll {
		spec.Project = req.Project
	}
	return query.Compile(rep.sch, spec)
}
