// Package edge implements the unsecured edge server of the paper's
// Figure 2: it pulls table replicas ("DB + VB-trees") from the central
// server, executes selection/projection queries locally, and returns each
// result together with its verification object.
//
// Because edge servers are the untrusted component of the architecture,
// the server carries an optional tamper hook that mutates responses before
// they are sent — the adversary used by the security tests and the demo
// binaries to show clients detecting a compromised edge.
package edge

import (
	"errors"
	"fmt"
	"math/big"
	"net"
	"sort"
	"sync"

	"edgeauth/internal/digest"
	"edgeauth/internal/query"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/storage"
	"edgeauth/internal/vbtree"
	"edgeauth/internal/vo"
	"edgeauth/internal/wire"
)

// TamperFn mutates a response in place before it leaves the edge server —
// the model of a hacked edge. Returning an error suppresses the response.
type TamperFn func(rs *vo.ResultSet, w *vo.VO) error

// Server is an edge server holding replicated tables.
type Server struct {
	mu     sync.RWMutex
	tables map[string]*replica
	tamper TamperFn

	centralAddr string

	lnMu      sync.Mutex
	listeners []net.Listener
	wg        sync.WaitGroup
	closed    bool
}

type replica struct {
	sch     *schema.Schema
	tree    *vbtree.Tree
	acc     *digest.Accumulator
	params  wire.AccParams
	keyVer  uint32
	version uint64
}

// New creates an edge server that replicates from centralAddr.
func New(centralAddr string) *Server {
	return &Server{
		tables:      make(map[string]*replica),
		centralAddr: centralAddr,
	}
}

// SetTamper installs (or clears, with nil) the compromised-edge hook.
func (s *Server) SetTamper(fn TamperFn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tamper = fn
}

// Tables lists the replicated tables.
func (s *Server) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for name := range s.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// PullAll replicates every table the central server advertises.
func (s *Server) PullAll() error {
	conn, err := net.Dial("tcp", s.centralAddr)
	if err != nil {
		return fmt.Errorf("edge: dialing central: %w", err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, wire.MsgListTablesReq, nil); err != nil {
		return err
	}
	mt, body, err := wire.ReadFrame(conn)
	if err != nil {
		return err
	}
	if mt == wire.MsgError {
		return wire.AsError(body)
	}
	names, err := wire.DecodeStringList(body)
	if err != nil {
		return err
	}
	for _, name := range names {
		if err := s.pullOn(conn, name); err != nil {
			return err
		}
	}
	return nil
}

// Pull replicates (or refreshes) one table.
func (s *Server) Pull(tableName string) error {
	conn, err := net.Dial("tcp", s.centralAddr)
	if err != nil {
		return fmt.Errorf("edge: dialing central: %w", err)
	}
	defer conn.Close()
	return s.pullOn(conn, tableName)
}

func (s *Server) pullOn(conn net.Conn, tableName string) error {
	if err := wire.WriteFrame(conn, wire.MsgSnapshotReq, []byte(tableName)); err != nil {
		return err
	}
	mt, body, err := wire.ReadFrame(conn)
	if err != nil {
		return err
	}
	if mt == wire.MsgError {
		return wire.AsError(body)
	}
	snap, err := wire.DecodeSnapshot(body)
	if err != nil {
		return err
	}
	rep, err := InstallSnapshot(snap)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.tables[tableName] = rep
	s.mu.Unlock()
	return nil
}

// InstallSnapshot materializes a snapshot into a queryable replica.
func InstallSnapshot(snap *wire.Snapshot) (*replica, error) {
	if snap.PageSize < storage.MinPageSize {
		return nil, errors.New("edge: snapshot page size too small")
	}
	mem, err := storage.NewMemPager(int(snap.PageSize))
	if err != nil {
		return nil, err
	}
	// Recreate the page address space, then overlay the snapshot pages.
	var maxID storage.PageID
	for _, id := range snap.PageIDs {
		if id > maxID {
			maxID = id
		}
	}
	for i := storage.PageID(1); i <= maxID; i++ {
		if _, err := mem.Allocate(); err != nil {
			return nil, err
		}
	}
	for i, id := range snap.PageIDs {
		if len(snap.PageData[i]) != int(snap.PageSize) {
			return nil, fmt.Errorf("edge: page %d has %d bytes, want %d", id, len(snap.PageData[i]), snap.PageSize)
		}
		if err := mem.WritePage(id, snap.PageData[i]); err != nil {
			return nil, err
		}
	}
	pool, err := storage.NewBufferPool(mem, 1<<20)
	if err != nil {
		return nil, err
	}
	heap, err := storage.OpenHeapFile(pool, snap.HeapPages)
	if err != nil {
		return nil, err
	}
	acc, err := digest.New(snap.AccParams.ToDigestParams())
	if err != nil {
		return nil, err
	}
	// The edge holds no trusted key material: signed digests are opaque
	// bytes it serves back to clients, and queries never recover them.
	// The tree still wants a public key for the VO's key-version stamp,
	// so build a placeholder carrying only the version.
	pub := &sig.PublicKey{
		N:       new(big.Int).Lsh(big.NewInt(1), 512),
		E:       big.NewInt(65537),
		Version: snap.KeyVersion,
	}
	cfg := vbtree.Config{
		Pool:   pool,
		Heap:   heap,
		Schema: snap.Schema,
		Acc:    acc,
		Pub:    pub,
	}
	tree, err := vbtree.Open(cfg, snap.Root, int(snap.Height), snap.RootSig)
	if err != nil {
		return nil, err
	}
	return &replica{
		sch:    snap.Schema,
		tree:   tree,
		acc:    acc,
		params: snap.AccParams,
		keyVer: snap.KeyVersion,
	}, nil
}

// RunQuery executes a compiled query against a replica.
func (s *Server) RunQuery(tableName string, q vbtree.Query) (*vo.ResultSet, *vo.VO, error) {
	s.mu.RLock()
	rep, ok := s.tables[tableName]
	tamper := s.tamper
	s.mu.RUnlock()
	if !ok {
		return nil, nil, fmt.Errorf("edge: table %q not replicated", tableName)
	}
	rs, w, err := rep.tree.RunQuery(q)
	if err != nil {
		return nil, nil, err
	}
	w.KeyVersion = rep.keyVer
	if tamper != nil {
		if err := tamper(rs, w); err != nil {
			return nil, nil, err
		}
	}
	return rs, w, nil
}

// Schema returns a replica's schema.
func (s *Server) Schema(tableName string) (*schema.Schema, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rep, ok := s.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("edge: table %q not replicated", tableName)
	}
	return rep.sch, nil
}

// Serve accepts client connections until the listener closes.
func (s *Server) Serve(l net.Listener) {
	s.lnMu.Lock()
	if s.closed {
		s.lnMu.Unlock()
		l.Close()
		return
	}
	s.listeners = append(s.listeners, l)
	s.lnMu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.handleConn(conn)
		}()
	}
}

// Close stops serving.
func (s *Server) Close() {
	s.lnMu.Lock()
	s.closed = true
	for _, l := range s.listeners {
		l.Close()
	}
	s.listeners = nil
	s.lnMu.Unlock()
	s.wg.Wait()
}

func (s *Server) handleConn(conn net.Conn) {
	for {
		mt, body, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		if err := s.dispatch(conn, mt, body); err != nil {
			if werr := wire.WriteError(conn, err); werr != nil {
				return
			}
		}
	}
}

func (s *Server) dispatch(conn net.Conn, mt wire.MsgType, body []byte) error {
	switch mt {
	case wire.MsgListTablesReq:
		return wire.WriteFrame(conn, wire.MsgListTablesResp, wire.EncodeStringList(s.Tables()))

	case wire.MsgSchemaReq:
		s.mu.RLock()
		rep, ok := s.tables[string(body)]
		s.mu.RUnlock()
		if !ok {
			return fmt.Errorf("edge: table %q not replicated", string(body))
		}
		resp := &wire.SchemaResponse{
			Schema:     rep.sch,
			AccParams:  rep.params,
			KeyVersion: rep.keyVer,
		}
		return wire.WriteFrame(conn, wire.MsgSchemaResp, resp.Encode())

	case wire.MsgQueryReq:
		req, err := wire.DecodeQueryRequest(body)
		if err != nil {
			return err
		}
		s.mu.RLock()
		rep, ok := s.tables[req.Table]
		s.mu.RUnlock()
		if !ok {
			return fmt.Errorf("edge: table %q not replicated", req.Table)
		}
		spec := query.Spec{Predicates: req.Predicates}
		if !req.ProjectAll {
			spec.Project = req.Project
		}
		q, err := query.Compile(rep.sch, spec)
		if err != nil {
			return err
		}
		rs, w, err := s.RunQuery(req.Table, q)
		if err != nil {
			return err
		}
		resp := &wire.QueryResponse{Result: rs, VO: w}
		return wire.WriteFrame(conn, wire.MsgQueryResp, resp.Encode())

	default:
		return errors.New("edge: unsupported message " + mt.String())
	}
}
