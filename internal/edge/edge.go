// Package edge implements the unsecured edge server of the paper's
// Figure 2: it pulls table replicas ("DB + VB-trees") from the central
// server, executes selection/projection queries locally, and returns each
// result together with its verification object.
//
// Replica storage is snapshot-isolated: every refresh (delta apply or
// snapshot install) builds an immutable successor version off to the side
// and publishes it with one atomic pointer swap, so queries pin a
// snapshot and traverse it with zero lock acquisitions — refresh cadence
// and query latency are independent, which is what lets an edge absorb
// heavy read traffic while updates propagate continuously (§3.4).
//
// Because edge servers are the untrusted component of the architecture,
// the server carries an optional tamper hook that mutates responses before
// they are sent — the adversary used by the security tests and the demo
// binaries to show clients detecting a compromised edge.
package edge

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"edgeauth/internal/digest"
	"edgeauth/internal/query"
	"edgeauth/internal/rpc"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/storage"
	"edgeauth/internal/vbtree"
	"edgeauth/internal/vo"
	"edgeauth/internal/wire"
)

// TamperFn mutates a response in place before it leaves the edge server —
// the model of a hacked edge. Returning an error suppresses the response.
type TamperFn func(rs *vo.ResultSet, w *vo.VO) error

// Options configures an edge server's serving side.
type Options struct {
	// IdleTimeout disconnects a client that sends no complete request
	// within the window (slowloris protection). 0 selects
	// rpc.DefaultIdleTimeout; negative disables the deadline.
	IdleTimeout time.Duration
	// MaxConcurrent bounds the requests executing concurrently on one
	// multiplexed (protocol v2) client connection. 0 selects
	// rpc.DefaultMaxConcurrent.
	MaxConcurrent int
}

// Server is an edge server holding replicated tables. The query path is
// lock-free: the table registry is a copy-on-write map behind an atomic
// pointer, and each replica serves queries from pinned immutable
// snapshots.
type Server struct {
	tables   atomic.Pointer[map[string]*replica]
	tablesMu sync.Mutex // serializes registry copy-on-write updates
	tamper   atomic.Pointer[TamperFn]

	opts Options
	// central is the pipelined, auto-redialing connection to the central
	// server; every replication exchange (snapshots, deltas, the key
	// fetch) multiplexes over it.
	central *rpc.Conn

	pubMu      sync.Mutex
	centralPub *sig.PublicKey

	lnMu      sync.Mutex
	listeners []net.Listener
	conns     rpc.ConnSet
	wg        sync.WaitGroup
	closed    bool
}

// replica is one replicated table over a snapshot-isolated PageStore.
// Queries acquire the current snapshot (an atomic pointer load plus a
// refcount pin) and never block; refreshMu only serializes concurrent
// writers building successor versions.
type replica struct {
	sch    *schema.Schema
	acc    *digest.Accumulator
	params wire.AccParams
	store  *storage.PageStore

	refreshMu sync.Mutex

	// diverged is set when a refresh discovers the central's table epoch
	// no longer matches this replica's — its version history descends
	// from a dead incarnation, so every answer it could give is
	// unverifiably stale. Queries fail with wire.ErrStaleReplica until a
	// snapshot reinstall replaces the replica (a fresh replica object, so
	// the flag never needs clearing).
	diverged atomic.Bool
}

// New creates an edge server that replicates from centralAddr.
func New(centralAddr string) *Server {
	return NewWithOptions(centralAddr, Options{})
}

// NewWithOptions creates an edge server with explicit serving options.
func NewWithOptions(centralAddr string, opts Options) *Server {
	s := &Server{
		opts:    opts,
		central: rpc.New(centralAddr, rpc.Options{}),
	}
	empty := make(map[string]*replica)
	s.tables.Store(&empty)
	return s
}

// SetTamper installs (or clears, with nil) the compromised-edge hook.
func (s *Server) SetTamper(fn TamperFn) {
	s.tamper.Store(&fn)
}

// replica resolves a table from the lock-free registry.
func (s *Server) replica(name string) *replica {
	return (*s.tables.Load())[name]
}

// setReplica publishes a new registry map with name -> rep installed.
func (s *Server) setReplica(name string, rep *replica) {
	s.tablesMu.Lock()
	defer s.tablesMu.Unlock()
	old := *s.tables.Load()
	next := make(map[string]*replica, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = rep
	s.tables.Store(&next)
}

// Tables lists the replicated tables.
func (s *Server) Tables() []string {
	m := *s.tables.Load()
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// state returns the replica's current published metadata. The returned
// struct is immutable and safe to use after the snapshot pin is dropped.
func (r *replica) state() (*vbtree.TableState, error) {
	snap := r.store.Acquire()
	defer snap.Release()
	st, ok := snap.Meta().(*vbtree.TableState)
	if !ok {
		return nil, errors.New("edge: replica has no published version")
	}
	return st, nil
}

// view pins the current snapshot and assembles the lock-free read view
// over it. The caller must Release the returned snapshot when done.
func (r *replica) view() (*vbtree.View, *vbtree.TableState, *storage.Snapshot, error) {
	snap := r.store.Acquire()
	st, ok := snap.Meta().(*vbtree.TableState)
	if !ok {
		snap.Release()
		return nil, nil, nil, errors.New("edge: replica has no published version")
	}
	v, err := st.ViewOver(snap, r.sch, r.acc, placeholderPub(st.KeyVersion))
	if err != nil {
		snap.Release()
		return nil, nil, nil, err
	}
	return v, st, snap, nil
}

// PullAll replicates every table the central server advertises.
func (s *Server) PullAll(ctx context.Context) error {
	body, err := s.central.Call(ctx, wire.MsgListTablesReq, nil, wire.MsgListTablesResp, true)
	if err != nil {
		return err
	}
	names, err := wire.DecodeStringList(body)
	if err != nil {
		return err
	}
	for _, name := range names {
		if _, err := s.pull(ctx, name); err != nil {
			return err
		}
	}
	return nil
}

// Pull replicates (or refreshes) one table with a full snapshot.
func (s *Server) Pull(ctx context.Context, tableName string) error {
	_, err := s.pull(ctx, tableName)
	return err
}

// pull replicates one table and returns the snapshot's wire size.
func (s *Server) pull(ctx context.Context, tableName string) (int, error) {
	body, err := s.central.Call(ctx, wire.MsgSnapshotReq, []byte(tableName), wire.MsgSnapshotResp, true)
	if err != nil {
		return 0, err
	}
	snap, err := wire.DecodeSnapshot(body)
	if err != nil {
		return 0, err
	}
	rep, err := InstallSnapshot(snap)
	if err != nil {
		return 0, err
	}
	s.setReplica(tableName, rep)
	return len(body), nil
}

// InstallSnapshot materializes a snapshot into a queryable replica: the
// pages become the replica's first published version. In-flight queries
// on a previous incarnation of the table keep their pinned snapshots and
// drain naturally.
func InstallSnapshot(snap *wire.Snapshot) (*replica, error) {
	if snap.PageSize < storage.MinPageSize {
		return nil, errors.New("edge: snapshot page size too small")
	}
	store, err := storage.NewPageStore(int(snap.PageSize))
	if err != nil {
		return nil, err
	}
	ov := store.Begin()
	defer ov.Abort() // no-op once published
	// Recreate the page address space, then overlay the snapshot pages.
	var maxID storage.PageID
	for _, id := range snap.PageIDs {
		if id > maxID {
			maxID = id
		}
	}
	for ov.NumPages() <= int(maxID) {
		ov.Allocate()
	}
	for i, id := range snap.PageIDs {
		if len(snap.PageData[i]) != int(snap.PageSize) {
			return nil, fmt.Errorf("edge: page %d has %d bytes, want %d", id, len(snap.PageData[i]), snap.PageSize)
		}
		if err := ov.WritePage(id, snap.PageData[i]); err != nil {
			return nil, err
		}
	}
	acc, err := digest.New(snap.AccParams.ToDigestParams())
	if err != nil {
		return nil, err
	}
	st := &vbtree.TableState{
		Root:       snap.Root,
		Height:     int(snap.Height),
		RootSig:    sig.Signature(snap.RootSig).Clone(),
		HeapPages:  append([]storage.PageID(nil), snap.HeapPages...),
		KeyVersion: snap.KeyVersion,
		Version:    snap.Version,
		Epoch:      snap.Epoch,
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	ov.Publish(st)
	return &replica{
		sch:    snap.Schema,
		acc:    acc,
		params: snap.AccParams,
		store:  store,
	}, nil
}

// placeholderPub builds the stand-in public key an edge replica's view is
// configured with. The edge holds no trusted key material: signed digests
// are opaque bytes it serves back to clients, and queries never recover
// them. The view still wants a public key for the VO's key-version stamp,
// so the placeholder carries only the version.
func placeholderPub(keyVersion uint32) *sig.PublicKey {
	return &sig.PublicKey{
		N:       new(big.Int).Lsh(big.NewInt(1), 512),
		E:       big.NewInt(65537),
		Version: keyVersion,
	}
}

// applyDelta builds the successor snapshot from a verified delta — the
// changed pages written into a copy-on-write overlay, the tree re-anchored
// at the delta's root metadata — and publishes it with one atomic swap.
// Queries in flight keep reading their pinned version; they never observe
// a half-applied delta.
func (r *replica) applyDelta(d *wire.Delta) error {
	r.refreshMu.Lock()
	defer r.refreshMu.Unlock()
	ov := r.store.Begin()
	defer ov.Abort() // no-op once published
	st, ok := ov.Base().Meta().(*vbtree.TableState)
	if !ok {
		return errors.New("edge: replica has no published version")
	}
	if d.Epoch != st.Epoch {
		return wire.StaleReplica(d.Table, fmt.Sprintf("edge: delta from epoch %d, replica version history from %d", d.Epoch, st.Epoch))
	}
	if d.FromVersion != st.Version {
		return wire.StaleReplica(d.Table, fmt.Sprintf("edge: delta starts at version %d, replica at %d", d.FromVersion, st.Version))
	}
	pageSize := r.store.PageSize()
	// Validate every page before staging anything; a bad delta must not
	// publish at all.
	for i, id := range d.PageIDs {
		if len(d.PageData[i]) != pageSize {
			return fmt.Errorf("edge: delta page %d has %d bytes, want %d", id, len(d.PageData[i]), pageSize)
		}
		if id == 0 || int(id) >= int(d.NumPages) {
			return fmt.Errorf("edge: delta page %d outside advertised page count %d", id, d.NumPages)
		}
	}
	next := &vbtree.TableState{
		Root:       d.Root,
		Height:     int(d.Height),
		RootSig:    sig.Signature(d.RootSig).Clone(),
		HeapPages:  append([]storage.PageID(nil), d.HeapPages...),
		KeyVersion: d.KeyVersion,
		Version:    d.ToVersion,
		Epoch:      st.Epoch,
	}
	if err := next.Validate(); err != nil {
		return err
	}
	for ov.NumPages() < int(d.NumPages) {
		ov.Allocate()
	}
	for i, id := range d.PageIDs {
		if err := ov.WritePage(id, d.PageData[i]); err != nil {
			return err
		}
	}
	ov.Publish(next)
	return nil
}

// RefreshStat reports how one table was brought up to date.
type RefreshStat struct {
	Table string
	// Mode is "delta", "snapshot" (first pull or fallback), or "noop"
	// (replica already current).
	Mode string
	// Bytes is the wire size of the response body that carried the state.
	Bytes                  int
	FromVersion, ToVersion uint64
}

// RefreshAll brings every replica up to date, preferring signed deltas
// and falling back to full snapshots for new tables or replicas that
// have fallen out of the central server's retained changelog. Tables are
// refreshed independently: one failing table does not starve the rest,
// and the stats of the tables that did refresh are returned alongside
// the joined errors. Refreshes never block queries: each builds the
// successor snapshot off to the side and publishes it atomically.
func (s *Server) RefreshAll(ctx context.Context) ([]RefreshStat, error) {
	body, err := s.central.Call(ctx, wire.MsgListTablesReq, nil, wire.MsgListTablesResp, true)
	if err != nil {
		return nil, err
	}
	names, err := wire.DecodeStringList(body)
	if err != nil {
		return nil, err
	}
	stats := make([]RefreshStat, 0, len(names))
	var errs []error
	for _, name := range names {
		// A cancelled refresh stops here instead of accumulating one dial
		// error per remaining table.
		if cerr := ctx.Err(); cerr != nil {
			errs = append(errs, cerr)
			break
		}
		st, err := s.Refresh(ctx, name)
		if err != nil {
			errs = append(errs, fmt.Errorf("edge: refreshing %q: %w", name, err))
			continue
		}
		stats = append(stats, st)
	}
	return stats, errors.Join(errs...)
}

// Refresh brings one replica up to date (delta if possible, snapshot
// otherwise) and reports what was transferred.
func (s *Server) Refresh(ctx context.Context, tableName string) (RefreshStat, error) {
	rep := s.replica(tableName)
	if rep == nil {
		n, err := s.pull(ctx, tableName)
		if err != nil {
			return RefreshStat{}, err
		}
		return s.statFor(tableName, "snapshot", n, 0), nil
	}
	cur, err := rep.state()
	if err != nil {
		return RefreshStat{}, err
	}
	from := cur.Version
	req := &wire.DeltaRequest{Table: tableName, FromVersion: from, Epoch: cur.Epoch}
	body, err := s.central.Call(ctx, wire.MsgDeltaReq, req.Encode(), wire.MsgDeltaResp, true)
	if err != nil {
		return RefreshStat{}, err
	}
	d, err := wire.DecodeDelta(body)
	if err != nil {
		return RefreshStat{}, err
	}
	payload, err := d.SigPayloadOfBody(body)
	if err != nil {
		return RefreshStat{}, err
	}
	pub, err := s.centralKey(ctx)
	if err != nil {
		return RefreshStat{}, err
	}
	if err := pub.Verify(d.Sig, payload); err != nil {
		// The central server may have rotated or regenerated its key
		// (e.g. after a restart); refetch once over the authenticated
		// channel before rejecting the delta.
		if pub, err = s.refetchCentralKey(ctx); err != nil {
			return RefreshStat{}, err
		}
		if err := pub.Verify(d.Sig, payload); err != nil {
			return RefreshStat{}, fmt.Errorf("edge: delta signature rejected: %w", err)
		}
	}
	if d.Epoch != cur.Epoch {
		// The central has a different table incarnation: this replica's
		// history is dead. Flag it so queries report staleness instead of
		// silently serving the old incarnation; a successful snapshot
		// pull below installs a fresh (unflagged) replica.
		rep.diverged.Store(true)
	}
	if d.SnapshotNeeded {
		n, err := s.pull(ctx, tableName)
		if err != nil {
			return RefreshStat{}, err
		}
		return s.statFor(tableName, "snapshot", n, from), nil
	}
	if d.ToVersion == from {
		return RefreshStat{Table: tableName, Mode: "noop", Bytes: len(body), FromVersion: from, ToVersion: from}, nil
	}
	if err := rep.applyDelta(d); err != nil {
		return RefreshStat{}, err
	}
	return RefreshStat{Table: tableName, Mode: "delta", Bytes: len(body), FromVersion: from, ToVersion: d.ToVersion}, nil
}

func (s *Server) statFor(tableName, mode string, bytes int, from uint64) RefreshStat {
	st := RefreshStat{Table: tableName, Mode: mode, Bytes: bytes, FromVersion: from}
	if rep := s.replica(tableName); rep != nil {
		if cur, err := rep.state(); err == nil {
			st.ToVersion = cur.Version
		}
	}
	return st
}

// centralKey fetches (once) the central server's public key over the
// replication connection — the edge's authenticated channel — so deltas
// can be signature-checked before they touch a replica.
func (s *Server) centralKey(ctx context.Context) (*sig.PublicKey, error) {
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	if s.centralPub != nil {
		return s.centralPub, nil
	}
	return s.fetchCentralKeyLocked(ctx)
}

// refetchCentralKey discards the cached key and fetches the current one
// (the central server may have rotated keys since the cache was filled).
func (s *Server) refetchCentralKey(ctx context.Context) (*sig.PublicKey, error) {
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	s.centralPub = nil
	return s.fetchCentralKeyLocked(ctx)
}

func (s *Server) fetchCentralKeyLocked(ctx context.Context) (*sig.PublicKey, error) {
	body, err := s.central.Call(ctx, wire.MsgPubKeyReq, nil, wire.MsgPubKeyResp, true)
	if err != nil {
		return nil, err
	}
	var pk sig.PublicKey
	if err := pk.UnmarshalBinary(body); err != nil {
		return nil, err
	}
	s.centralPub = &pk
	return s.centralPub, nil
}

// Version reports a replica's update version.
func (s *Server) Version(tableName string) (uint64, error) {
	rep := s.replica(tableName)
	if rep == nil {
		return 0, wire.UnknownTable("edge", tableName)
	}
	st, err := rep.state()
	if err != nil {
		return 0, err
	}
	return st.Version, nil
}

// RunQuery executes a compiled query against a replica. The path is
// lock-free: it pins the replica's current snapshot, traverses it, and
// releases the pin — concurrent delta applies publish successor
// snapshots without ever stalling or being stalled by queries. ctx is
// checked between page visits.
func (s *Server) RunQuery(ctx context.Context, tableName string, q vbtree.Query) (*vo.ResultSet, *vo.VO, error) {
	rep := s.replica(tableName)
	if rep == nil {
		return nil, nil, wire.UnknownTable("edge", tableName)
	}
	if rep.diverged.Load() {
		return nil, nil, wire.StaleReplica(tableName,
			fmt.Sprintf("edge: replica of %q descends from a dead table incarnation; refresh must install a snapshot first", tableName))
	}
	v, _, snap, err := rep.view()
	if err != nil {
		return nil, nil, err
	}
	defer snap.Release()
	rs, w, err := v.RunQuery(ctx, q)
	if err != nil {
		return nil, nil, err
	}
	if tp := s.tamper.Load(); tp != nil && *tp != nil {
		if err := (*tp)(rs, w); err != nil {
			return nil, nil, err
		}
	}
	return rs, w, nil
}

// Schema returns a replica's schema.
func (s *Server) Schema(tableName string) (*schema.Schema, error) {
	rep := s.replica(tableName)
	if rep == nil {
		return nil, wire.UnknownTable("edge", tableName)
	}
	return rep.sch, nil
}

// Serve accepts client connections until the listener closes.
func (s *Server) Serve(l net.Listener) {
	s.lnMu.Lock()
	if s.closed {
		s.lnMu.Unlock()
		l.Close()
		return
	}
	s.listeners = append(s.listeners, l)
	s.lnMu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		if !s.conns.Add(conn) {
			conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.conns.Remove(conn)
			defer conn.Close()
			s.handleConn(conn)
		}()
	}
}

// Close stops serving (listeners and live client connections) and drops
// the central connection.
func (s *Server) Close() {
	s.lnMu.Lock()
	s.closed = true
	for _, l := range s.listeners {
		l.Close()
	}
	s.listeners = nil
	s.lnMu.Unlock()
	s.conns.CloseAll()
	s.wg.Wait()
	s.central.Close()
}

// handleConn negotiates the protocol with the client and dispatches its
// requests — concurrently, on multiplexed v2 sessions — until it
// disconnects or idles out.
func (s *Server) handleConn(conn net.Conn) {
	rpc.ServeConn(conn, s.dispatch, rpc.ServeOptions{
		IdleTimeout:   s.opts.IdleTimeout,
		MaxConcurrent: s.opts.MaxConcurrent,
	})
}

// dispatch executes one client request and returns the response frame.
// It must be safe for concurrent use: v2 connections run requests in
// parallel (queries read pinned snapshots, so they interleave freely
// with delta application). ctx is the connection's context — cancelled
// when the client disconnects, which aborts traversal mid-query.
func (s *Server) dispatch(ctx context.Context, mt wire.MsgType, body []byte) (wire.MsgType, []byte, error) {
	switch mt {
	case wire.MsgListTablesReq:
		return wire.MsgListTablesResp, wire.EncodeStringList(s.Tables()), nil

	case wire.MsgSchemaReq:
		rep := s.replica(string(body))
		if rep == nil {
			return 0, nil, wire.UnknownTable("edge", string(body))
		}
		st, err := rep.state()
		if err != nil {
			return 0, nil, err
		}
		resp := &wire.SchemaResponse{
			Schema:     rep.sch,
			AccParams:  rep.params,
			KeyVersion: st.KeyVersion,
		}
		return wire.MsgSchemaResp, resp.Encode(), nil

	case wire.MsgQueryReq:
		req, err := wire.DecodeQueryRequest(body)
		if err != nil {
			return 0, nil, err
		}
		rep := s.replica(req.Table)
		if rep == nil {
			return 0, nil, wire.UnknownTable("edge", req.Table)
		}
		spec := query.Spec{Predicates: req.Predicates}
		if !req.ProjectAll {
			spec.Project = req.Project
		}
		q, err := query.Compile(rep.sch, spec)
		if err != nil {
			return 0, nil, err
		}
		rs, w, err := s.RunQuery(ctx, req.Table, q)
		if err != nil {
			return 0, nil, err
		}
		resp := &wire.QueryResponse{Result: rs, VO: w}
		return wire.MsgQueryResp, resp.Encode(), nil

	default:
		return 0, nil, wire.Unsupported("edge", mt)
	}
}
