// Package edge implements the unsecured edge server of the paper's
// Figure 2: it pulls table replicas ("DB + VB-trees") from the central
// server, executes selection/projection queries locally, and returns each
// result together with its verification object.
//
// Because edge servers are the untrusted component of the architecture,
// the server carries an optional tamper hook that mutates responses before
// they are sent — the adversary used by the security tests and the demo
// binaries to show clients detecting a compromised edge.
package edge

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"net"
	"sort"
	"sync"
	"time"

	"edgeauth/internal/digest"
	"edgeauth/internal/query"
	"edgeauth/internal/rpc"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/storage"
	"edgeauth/internal/vbtree"
	"edgeauth/internal/vo"
	"edgeauth/internal/wire"
)

// TamperFn mutates a response in place before it leaves the edge server —
// the model of a hacked edge. Returning an error suppresses the response.
type TamperFn func(rs *vo.ResultSet, w *vo.VO) error

// Options configures an edge server's serving side.
type Options struct {
	// IdleTimeout disconnects a client that sends no complete request
	// within the window (slowloris protection). 0 selects
	// rpc.DefaultIdleTimeout; negative disables the deadline.
	IdleTimeout time.Duration
	// MaxConcurrent bounds the requests executing concurrently on one
	// multiplexed (protocol v2) client connection. 0 selects
	// rpc.DefaultMaxConcurrent.
	MaxConcurrent int
}

// Server is an edge server holding replicated tables.
type Server struct {
	mu     sync.RWMutex
	tables map[string]*replica
	tamper TamperFn

	opts Options
	// central is the pipelined, auto-redialing connection to the central
	// server; every replication exchange (snapshots, deltas, the key
	// fetch) multiplexes over it.
	central *rpc.Conn

	pubMu      sync.Mutex
	centralPub *sig.PublicKey

	lnMu      sync.Mutex
	listeners []net.Listener
	conns     rpc.ConnSet
	wg        sync.WaitGroup
	closed    bool
}

// replica is one replicated table. Its mu serializes queries against
// in-place delta application: deltas overwrite pages of the shared pool,
// so a traversal must never interleave with an apply.
type replica struct {
	mu      sync.RWMutex
	sch     *schema.Schema
	tree    *vbtree.Tree
	pool    *storage.BufferPool
	acc     *digest.Accumulator
	params  wire.AccParams
	keyVer  uint32
	version uint64
	epoch   uint64
}

// New creates an edge server that replicates from centralAddr.
func New(centralAddr string) *Server {
	return NewWithOptions(centralAddr, Options{})
}

// NewWithOptions creates an edge server with explicit serving options.
func NewWithOptions(centralAddr string, opts Options) *Server {
	return &Server{
		tables:  make(map[string]*replica),
		opts:    opts,
		central: rpc.New(centralAddr, rpc.Options{}),
	}
}

// SetTamper installs (or clears, with nil) the compromised-edge hook.
func (s *Server) SetTamper(fn TamperFn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tamper = fn
}

// Tables lists the replicated tables.
func (s *Server) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for name := range s.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// PullAll replicates every table the central server advertises.
func (s *Server) PullAll(ctx context.Context) error {
	body, err := s.central.Call(ctx, wire.MsgListTablesReq, nil, wire.MsgListTablesResp, true)
	if err != nil {
		return err
	}
	names, err := wire.DecodeStringList(body)
	if err != nil {
		return err
	}
	for _, name := range names {
		if _, err := s.pull(ctx, name); err != nil {
			return err
		}
	}
	return nil
}

// Pull replicates (or refreshes) one table with a full snapshot.
func (s *Server) Pull(ctx context.Context, tableName string) error {
	_, err := s.pull(ctx, tableName)
	return err
}

// pull replicates one table and returns the snapshot's wire size.
func (s *Server) pull(ctx context.Context, tableName string) (int, error) {
	body, err := s.central.Call(ctx, wire.MsgSnapshotReq, []byte(tableName), wire.MsgSnapshotResp, true)
	if err != nil {
		return 0, err
	}
	snap, err := wire.DecodeSnapshot(body)
	if err != nil {
		return 0, err
	}
	rep, err := InstallSnapshot(snap)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.tables[tableName] = rep
	s.mu.Unlock()
	return len(body), nil
}

// InstallSnapshot materializes a snapshot into a queryable replica.
func InstallSnapshot(snap *wire.Snapshot) (*replica, error) {
	if snap.PageSize < storage.MinPageSize {
		return nil, errors.New("edge: snapshot page size too small")
	}
	mem, err := storage.NewMemPager(int(snap.PageSize))
	if err != nil {
		return nil, err
	}
	// Recreate the page address space, then overlay the snapshot pages.
	var maxID storage.PageID
	for _, id := range snap.PageIDs {
		if id > maxID {
			maxID = id
		}
	}
	for i := storage.PageID(1); i <= maxID; i++ {
		if _, err := mem.Allocate(); err != nil {
			return nil, err
		}
	}
	for i, id := range snap.PageIDs {
		if len(snap.PageData[i]) != int(snap.PageSize) {
			return nil, fmt.Errorf("edge: page %d has %d bytes, want %d", id, len(snap.PageData[i]), snap.PageSize)
		}
		if err := mem.WritePage(id, snap.PageData[i]); err != nil {
			return nil, err
		}
	}
	pool, err := storage.NewBufferPool(mem, 1<<20)
	if err != nil {
		return nil, err
	}
	heap, err := storage.OpenHeapFile(pool, snap.HeapPages)
	if err != nil {
		return nil, err
	}
	acc, err := digest.New(snap.AccParams.ToDigestParams())
	if err != nil {
		return nil, err
	}
	cfg := vbtree.Config{
		Pool:   pool,
		Heap:   heap,
		Schema: snap.Schema,
		Acc:    acc,
		Pub:    placeholderPub(snap.KeyVersion),
	}
	tree, err := vbtree.Open(cfg, snap.Root, int(snap.Height), snap.RootSig)
	if err != nil {
		return nil, err
	}
	return &replica{
		sch:     snap.Schema,
		tree:    tree,
		pool:    pool,
		acc:     acc,
		params:  snap.AccParams,
		keyVer:  snap.KeyVersion,
		version: snap.Version,
		epoch:   snap.Epoch,
	}, nil
}

// placeholderPub builds the stand-in public key an edge replica's tree is
// configured with. The edge holds no trusted key material: signed digests
// are opaque bytes it serves back to clients, and queries never recover
// them. The tree still wants a public key for the VO's key-version stamp,
// so the placeholder carries only the version.
func placeholderPub(keyVersion uint32) *sig.PublicKey {
	return &sig.PublicKey{
		N:       new(big.Int).Lsh(big.NewInt(1), 512),
		E:       big.NewInt(65537),
		Version: keyVersion,
	}
}

// applyDelta overlays a verified delta onto the replica in place: it
// extends the page address space, overwrites the changed pages through
// the buffer pool (keeping cached frames coherent), and re-anchors the
// tree at the delta's root metadata and signed root digest.
func (r *replica) applyDelta(d *wire.Delta) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if d.Epoch != r.epoch {
		return wire.StaleReplica(d.Table, fmt.Sprintf("edge: delta from epoch %d, replica version history from %d", d.Epoch, r.epoch))
	}
	if d.FromVersion != r.version {
		return wire.StaleReplica(d.Table, fmt.Sprintf("edge: delta starts at version %d, replica at %d", d.FromVersion, r.version))
	}
	pager := r.pool.Pager()
	pageSize := pager.PageSize()
	// Validate every page before mutating anything: a bad page mid-apply
	// would otherwise leave the pool half-overwritten while the tree
	// still anchors to the old state.
	for i, id := range d.PageIDs {
		if len(d.PageData[i]) != pageSize {
			return fmt.Errorf("edge: delta page %d has %d bytes, want %d", id, len(d.PageData[i]), pageSize)
		}
		if id == 0 || int(id) >= int(d.NumPages) {
			return fmt.Errorf("edge: delta page %d outside advertised page count %d", id, d.NumPages)
		}
	}
	for pager.NumPages() < int(d.NumPages) {
		if _, err := pager.Allocate(); err != nil {
			return err
		}
	}
	for i, id := range d.PageIDs {
		f, err := r.pool.Fetch(id)
		if err != nil {
			return err
		}
		copy(f.Page().Bytes(), d.PageData[i])
		r.pool.Unpin(f, true)
	}
	heap, err := storage.OpenHeapFile(r.pool, d.HeapPages)
	if err != nil {
		return err
	}
	cfg := vbtree.Config{
		Pool:   r.pool,
		Heap:   heap,
		Schema: r.sch,
		Acc:    r.acc,
		Pub:    placeholderPub(d.KeyVersion),
	}
	tree, err := vbtree.Open(cfg, d.Root, int(d.Height), d.RootSig)
	if err != nil {
		return err
	}
	r.tree = tree
	r.keyVer = d.KeyVersion
	r.version = d.ToVersion
	return nil
}

// RefreshStat reports how one table was brought up to date.
type RefreshStat struct {
	Table string
	// Mode is "delta", "snapshot" (first pull or fallback), or "noop"
	// (replica already current).
	Mode string
	// Bytes is the wire size of the response body that carried the state.
	Bytes                  int
	FromVersion, ToVersion uint64
}

// RefreshAll brings every replica up to date, preferring signed deltas
// and falling back to full snapshots for new tables or replicas that
// have fallen out of the central server's retained changelog. Tables are
// refreshed independently: one failing table does not starve the rest,
// and the stats of the tables that did refresh are returned alongside
// the joined errors.
func (s *Server) RefreshAll(ctx context.Context) ([]RefreshStat, error) {
	body, err := s.central.Call(ctx, wire.MsgListTablesReq, nil, wire.MsgListTablesResp, true)
	if err != nil {
		return nil, err
	}
	names, err := wire.DecodeStringList(body)
	if err != nil {
		return nil, err
	}
	stats := make([]RefreshStat, 0, len(names))
	var errs []error
	for _, name := range names {
		st, err := s.Refresh(ctx, name)
		if err != nil {
			errs = append(errs, fmt.Errorf("edge: refreshing %q: %w", name, err))
			continue
		}
		stats = append(stats, st)
	}
	return stats, errors.Join(errs...)
}

// Refresh brings one replica up to date (delta if possible, snapshot
// otherwise) and reports what was transferred.
func (s *Server) Refresh(ctx context.Context, tableName string) (RefreshStat, error) {
	s.mu.RLock()
	rep := s.tables[tableName]
	s.mu.RUnlock()
	if rep == nil {
		n, err := s.pull(ctx, tableName)
		if err != nil {
			return RefreshStat{}, err
		}
		return s.statFor(tableName, "snapshot", n, 0), nil
	}
	rep.mu.RLock()
	from := rep.version
	epoch := rep.epoch
	rep.mu.RUnlock()
	req := &wire.DeltaRequest{Table: tableName, FromVersion: from, Epoch: epoch}
	body, err := s.central.Call(ctx, wire.MsgDeltaReq, req.Encode(), wire.MsgDeltaResp, true)
	if err != nil {
		return RefreshStat{}, err
	}
	d, err := wire.DecodeDelta(body)
	if err != nil {
		return RefreshStat{}, err
	}
	payload, err := d.SigPayloadOfBody(body)
	if err != nil {
		return RefreshStat{}, err
	}
	pub, err := s.centralKey(ctx)
	if err != nil {
		return RefreshStat{}, err
	}
	if err := pub.Verify(d.Sig, payload); err != nil {
		// The central server may have rotated or regenerated its key
		// (e.g. after a restart); refetch once over the authenticated
		// channel before rejecting the delta.
		if pub, err = s.refetchCentralKey(ctx); err != nil {
			return RefreshStat{}, err
		}
		if err := pub.Verify(d.Sig, payload); err != nil {
			return RefreshStat{}, fmt.Errorf("edge: delta signature rejected: %w", err)
		}
	}
	if d.SnapshotNeeded {
		n, err := s.pull(ctx, tableName)
		if err != nil {
			return RefreshStat{}, err
		}
		return s.statFor(tableName, "snapshot", n, from), nil
	}
	if d.ToVersion == from {
		return RefreshStat{Table: tableName, Mode: "noop", Bytes: len(body), FromVersion: from, ToVersion: from}, nil
	}
	if err := rep.applyDelta(d); err != nil {
		return RefreshStat{}, err
	}
	return RefreshStat{Table: tableName, Mode: "delta", Bytes: len(body), FromVersion: from, ToVersion: d.ToVersion}, nil
}

func (s *Server) statFor(tableName, mode string, bytes int, from uint64) RefreshStat {
	st := RefreshStat{Table: tableName, Mode: mode, Bytes: bytes, FromVersion: from}
	s.mu.RLock()
	if rep := s.tables[tableName]; rep != nil {
		rep.mu.RLock()
		st.ToVersion = rep.version
		rep.mu.RUnlock()
	}
	s.mu.RUnlock()
	return st
}

// centralKey fetches (once) the central server's public key over the
// replication connection — the edge's authenticated channel — so deltas
// can be signature-checked before they touch a replica.
func (s *Server) centralKey(ctx context.Context) (*sig.PublicKey, error) {
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	if s.centralPub != nil {
		return s.centralPub, nil
	}
	return s.fetchCentralKeyLocked(ctx)
}

// refetchCentralKey discards the cached key and fetches the current one
// (the central server may have rotated keys since the cache was filled).
func (s *Server) refetchCentralKey(ctx context.Context) (*sig.PublicKey, error) {
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	s.centralPub = nil
	return s.fetchCentralKeyLocked(ctx)
}

func (s *Server) fetchCentralKeyLocked(ctx context.Context) (*sig.PublicKey, error) {
	body, err := s.central.Call(ctx, wire.MsgPubKeyReq, nil, wire.MsgPubKeyResp, true)
	if err != nil {
		return nil, err
	}
	var pk sig.PublicKey
	if err := pk.UnmarshalBinary(body); err != nil {
		return nil, err
	}
	s.centralPub = &pk
	return s.centralPub, nil
}

// Version reports a replica's update version.
func (s *Server) Version(tableName string) (uint64, error) {
	s.mu.RLock()
	rep := s.tables[tableName]
	s.mu.RUnlock()
	if rep == nil {
		return 0, wire.UnknownTable("edge", tableName)
	}
	rep.mu.RLock()
	defer rep.mu.RUnlock()
	return rep.version, nil
}

// RunQuery executes a compiled query against a replica.
func (s *Server) RunQuery(tableName string, q vbtree.Query) (*vo.ResultSet, *vo.VO, error) {
	s.mu.RLock()
	rep, ok := s.tables[tableName]
	tamper := s.tamper
	s.mu.RUnlock()
	if !ok {
		return nil, nil, wire.UnknownTable("edge", tableName)
	}
	rep.mu.RLock()
	rs, w, err := rep.tree.RunQuery(q)
	keyVer := rep.keyVer
	rep.mu.RUnlock()
	if err != nil {
		return nil, nil, err
	}
	w.KeyVersion = keyVer
	if tamper != nil {
		if err := tamper(rs, w); err != nil {
			return nil, nil, err
		}
	}
	return rs, w, nil
}

// Schema returns a replica's schema.
func (s *Server) Schema(tableName string) (*schema.Schema, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rep, ok := s.tables[tableName]
	if !ok {
		return nil, wire.UnknownTable("edge", tableName)
	}
	return rep.sch, nil
}

// Serve accepts client connections until the listener closes.
func (s *Server) Serve(l net.Listener) {
	s.lnMu.Lock()
	if s.closed {
		s.lnMu.Unlock()
		l.Close()
		return
	}
	s.listeners = append(s.listeners, l)
	s.lnMu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		if !s.conns.Add(conn) {
			conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.conns.Remove(conn)
			defer conn.Close()
			s.handleConn(conn)
		}()
	}
}

// Close stops serving (listeners and live client connections) and drops
// the central connection.
func (s *Server) Close() {
	s.lnMu.Lock()
	s.closed = true
	for _, l := range s.listeners {
		l.Close()
	}
	s.listeners = nil
	s.lnMu.Unlock()
	s.conns.CloseAll()
	s.wg.Wait()
	s.central.Close()
}

// handleConn negotiates the protocol with the client and dispatches its
// requests — concurrently, on multiplexed v2 sessions — until it
// disconnects or idles out.
func (s *Server) handleConn(conn net.Conn) {
	rpc.ServeConn(conn, s.dispatch, rpc.ServeOptions{
		IdleTimeout:   s.opts.IdleTimeout,
		MaxConcurrent: s.opts.MaxConcurrent,
	})
}

// dispatch executes one client request and returns the response frame.
// It must be safe for concurrent use: v2 connections run requests in
// parallel (queries take the replica read lock, so they interleave
// safely with delta application).
func (s *Server) dispatch(mt wire.MsgType, body []byte) (wire.MsgType, []byte, error) {
	switch mt {
	case wire.MsgListTablesReq:
		return wire.MsgListTablesResp, wire.EncodeStringList(s.Tables()), nil

	case wire.MsgSchemaReq:
		s.mu.RLock()
		rep, ok := s.tables[string(body)]
		s.mu.RUnlock()
		if !ok {
			return 0, nil, wire.UnknownTable("edge", string(body))
		}
		rep.mu.RLock()
		resp := &wire.SchemaResponse{
			Schema:     rep.sch,
			AccParams:  rep.params,
			KeyVersion: rep.keyVer,
		}
		rep.mu.RUnlock()
		return wire.MsgSchemaResp, resp.Encode(), nil

	case wire.MsgQueryReq:
		req, err := wire.DecodeQueryRequest(body)
		if err != nil {
			return 0, nil, err
		}
		s.mu.RLock()
		rep, ok := s.tables[req.Table]
		s.mu.RUnlock()
		if !ok {
			return 0, nil, wire.UnknownTable("edge", req.Table)
		}
		spec := query.Spec{Predicates: req.Predicates}
		if !req.ProjectAll {
			spec.Project = req.Project
		}
		q, err := query.Compile(rep.sch, spec)
		if err != nil {
			return 0, nil, err
		}
		rs, w, err := s.RunQuery(req.Table, q)
		if err != nil {
			return 0, nil, err
		}
		resp := &wire.QueryResponse{Result: rs, VO: w}
		return wire.MsgQueryResp, resp.Encode(), nil

	default:
		return 0, nil, wire.Unsupported("edge", mt)
	}
}
