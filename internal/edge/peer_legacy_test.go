package edge

import (
	"context"
	"net"
	"testing"

	"edgeauth/internal/central"
	"edgeauth/internal/rpc"
	"edgeauth/internal/sig"
	"edgeauth/internal/wire"
)

// legacyCentral fronts a real central server but speaks only the
// pre-sharding protocol: shard maps (and every other modern request)
// come back unsupported, so edges replicate the classic single tree.
type legacyCentral struct {
	key  *sig.PrivateKey
	real *central.Server
}

func (f *legacyCentral) serve(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				rpc.ServeConn(conn, f.dispatch, rpc.ServeOptions{})
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

func (f *legacyCentral) dispatch(ctx context.Context, mt wire.MsgType, body []byte) (wire.MsgType, []byte, error) {
	switch mt {
	case wire.MsgPubKeyReq:
		blob, err := f.key.Public().MarshalBinary()
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgPubKeyResp, blob, nil
	case wire.MsgListTablesReq:
		return wire.MsgListTablesResp, wire.EncodeStringList(f.real.Tables()), nil
	case wire.MsgSnapshotReq:
		snap, err := f.real.Snapshot(string(body))
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgSnapshotResp, snap.Encode(), nil
	case wire.MsgDeltaReq:
		req, err := wire.DecodeDeltaRequest(body)
		if err != nil {
			return 0, nil, err
		}
		d, err := f.real.Delta(req.Table, req.FromVersion, req.Epoch)
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgDeltaResp, d.Encode(), nil
	default:
		return 0, nil, wire.Unsupported("legacy-central", mt)
	}
}

// TestLegacyPeerDrainAndCentralFreshness covers the peer tier on the
// pre-sharding (v1 single-tree) path: relayed deltas drain from the
// peer, but every round still ends with a central delta exchange — the
// freshness statement a peer cannot fabricate — and an idle peer's
// typed Behind answer is NOT scored as a failure.
func TestLegacyPeerDrainAndCentralFreshness(t *testing.T) {
	ctx := context.Background()
	srv, _ := startCentralOpts(t, 200, central.Options{PageSize: 1024})
	legacy := &legacyCentral{key: serverKey(t), real: srv}
	centralAddr := legacy.serve(t)

	t1 := NewWithOptions(centralAddr, Options{ServePeers: true})
	t.Cleanup(func() { t1.Close() })
	if err := t1.PullAll(ctx); err != nil {
		t.Fatal(err)
	}
	peerAddr := startEdge(t, t1)
	t2 := NewWithOptions(centralAddr, Options{Upstreams: []string{peerAddr}})
	t.Cleanup(func() { t2.Close() })
	if err := t2.PullAll(ctx); err != nil {
		t.Fatal(err)
	}
	// No signed shard map exists on this path, so bootstrap bulk is
	// central-only: a peer-relayed legacy snapshot would have no pin to
	// bind to and could be replayed.
	if got := t2.Stats().PeerPayloadsPulled; got != 0 {
		t.Fatalf("legacy bootstrap pulled %d payloads from peers, want 0", got)
	}

	// Commit; tier-1 refreshes (catching the raw signed delta body in
	// its relay cache); tier-2's refresh drains it from the peer.
	if err := srv.Insert("items", freshRow(t, 500_000)); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Refresh(ctx, "items"); err != nil {
		t.Fatal(err)
	}
	st, err := t2.Refresh(ctx, "items")
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "delta" {
		t.Fatalf("refresh mode = %q, want delta", st.Mode)
	}
	if got := t2.Stats().PeerPayloadsPulled; got != 1 {
		t.Fatalf("tier-2 pulled %d peer payloads, want 1 relayed delta", got)
	}
	want, err := srv.Version("items")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := t2.Version("items"); v != want {
		t.Fatalf("tier-2 at v%d, central at v%d", v, want)
	}

	// Idle tick: the peer answers Behind (it has nothing newer), which
	// must neither fail the round nor poison the source's health.
	preFail := t2.Stats().PeerFailovers
	st, err = t2.Refresh(ctx, "items")
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "noop" {
		t.Fatalf("idle refresh mode = %q, want noop", st.Mode)
	}
	if got := t2.Stats().PeerFailovers; got != preFail {
		t.Fatalf("idle tick scored %d peer failovers", got-preFail)
	}
	if stats := t2.PeerStats(); stats[0].ConsecutiveFail != 0 {
		t.Fatalf("idle Behind backed the healthy peer off: %+v", stats[0])
	}
}
