package edge

import (
	"context"
	"testing"

	"edgeauth/internal/tamper"
)

// attackByName pulls one attack out of the malicious-relay catalogue.
func attackByName(t *testing.T, name string) tamper.PeerAttack {
	t.Helper()
	for _, a := range tamper.PeerAttacks() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no peer attack %q", name)
	return tamper.PeerAttack{}
}

// TestMaliciousPeerBitFlipDelta: a relay that corrupts delta bodies in
// transit. Deltas are whole-body signed by the central, so the
// downstream rejects every flipped payload, scores the peer, and heals
// via central fallback in the same round — the attack costs latency,
// never correctness.
func TestMaliciousPeerBitFlipDelta(t *testing.T) {
	ctx := context.Background()
	srv, centralAddr, t1, t2 := startPeerTier(t, 300, 2)
	if err := t2.PullAll(ctx); err != nil {
		t.Fatal(err)
	}
	t1.SetPeerTamper(attackByName(t, "bit-flip-delta").NewHook())

	if err := srv.Insert("items", freshRow(t, 500_000)); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Refresh(ctx, "items"); err != nil {
		t.Fatal(err)
	}
	st, err := t2.Refresh(ctx, "items")
	if err != nil {
		t.Fatalf("refresh against corrupting peer: %v", err)
	}
	if st.Mode != "delta" {
		t.Fatalf("refresh mode = %q, want delta (healed from central)", st.Mode)
	}
	if got := t2.Stats().PeerFailovers; got == 0 {
		t.Fatal("corrupted relay was not scored as a failover")
	}
	want, _ := srv.Version("items")
	if v, _ := t2.Version("items"); v != want {
		t.Fatalf("tier-2 at v%d, central at v%d", v, want)
	}
	if n := verifiedCount(t, startEdge(t, t2), centralAddr, 499_999); n != 1 {
		t.Fatalf("verified rows = %d, want 1", n)
	}
}

// TestMaliciousPeerReplayStaleSnapshot: a relay that freezes its
// snapshot answers, trying to wind a bootstrapping edge back to an old
// (authentically signed) state. The downstream binds every peer
// snapshot to the exact pin of its central-verified shard map, so the
// replay is rejected and the bootstrap heals from the central.
func TestMaliciousPeerReplayStaleSnapshot(t *testing.T) {
	ctx := context.Background()
	srv, centralAddr, t1, t2 := startPeerTier(t, 300, 2)
	t1.SetPeerTamper(attackByName(t, "replay-stale-snapshot").NewHook())

	// Prime the replay: a first downstream bootstrap captures the
	// current (soon to be stale) snapshot bodies.
	if err := t2.PullAll(ctx); err != nil {
		t.Fatal(err)
	}

	// The table moves on and tier-1 keeps up.
	if err := srv.Insert("items", freshRow(t, 500_000)); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Refresh(ctx, "items"); err != nil {
		t.Fatal(err)
	}

	// A late joiner bootstraps through the compromised relay: the
	// replayed body fails the map pin for the shard that moved, and the
	// central supplies that shard instead.
	late := NewWithOptions(centralAddr, Options{Upstreams: t2.opts.Upstreams})
	t.Cleanup(func() { late.Close() })
	if err := late.PullAll(ctx); err != nil {
		t.Fatalf("bootstrap against replaying peer: %v", err)
	}
	if got := late.Stats().PeerFailovers; got == 0 {
		t.Fatal("replayed snapshot was not scored as a failover")
	}
	want, _ := srv.Version("items")
	if v, _ := late.Version("items"); v != want {
		t.Fatalf("late edge at v%d, central at v%d", v, want)
	}
	if n := verifiedCount(t, startEdge(t, late), centralAddr, 499_999); n != 1 {
		t.Fatalf("verified rows = %d, want 1", n)
	}
}

// TestMaliciousPeerWrongShardRelay: a relay that answers one shard's
// request with another shard's (authentically signed) payload. The
// signed delta names its shard ref in the body and a snapshot must
// recover to the requested shard's pinned digest, so the swap is
// rejected either way and the round heals from the central.
func TestMaliciousPeerWrongShardRelay(t *testing.T) {
	ctx := context.Background()
	srv, centralAddr, t1, t2 := startPeerTier(t, 300, 2)
	if err := t2.PullAll(ctx); err != nil {
		t.Fatal(err)
	}
	t1.SetPeerTamper(attackByName(t, "wrong-shard-relay").NewHook())

	// Dirty BOTH shards so the refresh requests two different refs —
	// giving the relay a payload to cross-serve.
	if err := srv.Insert("items", freshRow(t, -10)); err != nil {
		t.Fatal(err)
	}
	if err := srv.Insert("items", freshRow(t, 500_000)); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Refresh(ctx, "items"); err != nil {
		t.Fatal(err)
	}
	st, err := t2.Refresh(ctx, "items")
	if err != nil {
		t.Fatalf("refresh against cross-serving peer: %v", err)
	}
	if st.ShardsRefreshed != 2 {
		t.Fatalf("refreshed %d shards, want 2", st.ShardsRefreshed)
	}
	if got := t2.Stats().PeerFailovers; got == 0 {
		t.Fatal("wrong-shard payload was not scored as a failover")
	}
	want, _ := srv.Version("items")
	if v, _ := t2.Version("items"); v != want {
		t.Fatalf("tier-2 at v%d, central at v%d", v, want)
	}
	// Both commits visible and verified through scatter-gather.
	if n := verifiedCount(t, startEdge(t, t2), centralAddr, 499_999); n != 1 {
		t.Fatalf("verified high rows = %d, want 1", n)
	}
}
