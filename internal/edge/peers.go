package edge

// The peer distribution tier: edges serving signed refresh traffic to
// other edges (see internal/peer for the trust argument).
//
// Serving side (Options.ServePeers): snapshots are materialized from
// the replica's published pinned sets — exactly the state the edge
// serves to clients — and deltas are relayed VERBATIM from the raw
// central-signed bodies this edge itself pulled and verified
// (internal/peer.Cache). Nothing is re-signed or re-encoded, so a
// downstream edge verifies a relayed payload with the same code paths,
// against the same central key, as one the central served directly.
//
// Pulling side (Options.Upstreams): the refresh loop walks the
// configured upstreams in order for bulk payloads and keeps the central
// as the implicit last resort. Trust anchors — the signed shard map and
// the central public key — always come from the central: a peer cannot
// prove freshness, only relay integrity-protected bytes. Every
// peer-served payload must verify AND make strict forward progress
// against the already-verified map; any failure (unreachable, typed
// behind/gap, bad signature, wrong shard, no progress) backs the source
// off and the refresh falls over to the next source, ending at the
// central. A malicious or wedged peer can therefore cost latency, never
// correctness and never a silent freeze.

import (
	"context"
	"errors"
	"fmt"

	"edgeauth/internal/peer"
	"edgeauth/internal/shardmap"
	"edgeauth/internal/storage"
	"edgeauth/internal/vbtree"
	"edgeauth/internal/wire"
)

// PeerTamperFn rewrites a replication payload before it leaves a
// serving edge — the model of a malicious relay peer. It receives the
// response frame type, the ref the payload answers (the table name, or
// the shard ref for partitioned tables), and the encoded body, and
// returns the body to serve instead.
type PeerTamperFn func(mt wire.MsgType, ref string, body []byte) []byte

// SetPeerTamper installs (or clears, with nil) the malicious-relay hook.
func (s *Server) SetPeerTamper(fn PeerTamperFn) { s.peerTamper.Store(&fn) }

// tamperedPeerBody routes an outgoing replication payload through the
// malicious-relay hook.
func (s *Server) tamperedPeerBody(mt wire.MsgType, ref string, body []byte) []byte {
	if tp := s.peerTamper.Load(); tp != nil && *tp != nil {
		return (*tp)(mt, ref, body)
	}
	return body
}

// PeerStats reports the per-upstream pull counters in configured order
// (nil when the edge has no upstreams).
func (s *Server) PeerStats() []peer.SourceStats { return s.peers.Stats() }

// RelayStats reports the relay cache's lookup counters.
func (s *Server) RelayStats() peer.CacheStats { return s.relay.Stats() }

// countCentralPull accounts one replication payload pulled from the
// central server.
func (s *Server) countCentralPull(n int) {
	s.stats.centralPayloadsPulled.Add(1)
	s.stats.centralBytesPulled.Add(uint64(n))
}

// countPeerPull accounts one verified payload pulled from a peer.
func (s *Server) countPeerPull(src *peer.Source, n int) {
	s.stats.peerPayloadsPulled.Add(1)
	s.stats.peerBytesPulled.Add(uint64(n))
	src.ReportSuccess(n)
}

// peerFail backs a source off and counts the failover.
func (s *Server) peerFail(src *peer.Source) {
	s.peers.Fail(src)
	s.stats.peerFailovers.Add(1)
}

// maxPeerHops bounds how many consecutive deltas one refresh accepts
// from one source — a guard rail, not a protocol limit (each accepted
// hop must advance the store, so the loop already cannot cycle).
const maxPeerHops = 64

// ---------------------------------------------------------------------
// Serving side.

// servePeer answers replication requests from this edge's replicated
// state. Gated by Options.ServePeers: a non-serving edge answers with
// the same typed unsupported error a pre-peer build would, so enabling
// the tier is purely additive.
func (s *Server) servePeer(ctx context.Context, mt wire.MsgType, body []byte) (wire.MsgType, []byte, error) {
	_ = ctx
	if !s.opts.ServePeers {
		return 0, nil, wire.Unsupported("edge", mt)
	}
	switch mt {
	case wire.MsgShardSnapshotReq:
		req, err := wire.DecodeShardSnapshotRequest(body)
		if err != nil {
			return 0, nil, err
		}
		return s.servePeerSnapshot(req.Table, int(req.Shard), false)
	case wire.MsgSnapshotReq:
		return s.servePeerSnapshot(string(body), 0, true)
	case wire.MsgShardDeltaReq:
		req, err := wire.DecodeShardDeltaRequest(body)
		if err != nil {
			return 0, nil, err
		}
		return s.servePeerDelta(req.Table, wire.ShardRef(req.Table, req.Shard), int(req.Shard), req.FromVersion, req.Epoch, false)
	case wire.MsgDeltaReq:
		req, err := wire.DecodeDeltaRequest(body)
		if err != nil {
			return 0, nil, err
		}
		return s.servePeerDelta(req.Table, req.Table, 0, req.FromVersion, req.Epoch, true)
	}
	return 0, nil, wire.Unsupported("edge", mt)
}

// servePeerSnapshot materializes one shard of the replica's published
// set as a wire snapshot — the same pinned state client queries read,
// so the snapshot a downstream installs is exactly what this edge
// serves. legacy marks the v1 single-tree request shape, which only an
// unsharded replica may answer.
func (s *Server) servePeerSnapshot(table string, idx int, legacy bool) (wire.MsgType, []byte, error) {
	rep := s.replica(table)
	if rep == nil {
		return 0, nil, wire.UnknownTable("edge", table)
	}
	if legacy {
		if set := rep.set.Load(); set == nil || set.smap != nil || len(set.shards) != 1 {
			return 0, nil, wire.NotSharded("edge", table, "table is range-partitioned; use shard snapshots")
		}
	}
	_, sr, err := rep.pinShard(idx)
	if err != nil {
		if errors.Is(err, errShardRange) {
			return 0, nil, wire.ShardMoved(table, err.Error())
		}
		return 0, nil, err
	}
	defer sr.snap.Release()
	snap := &wire.Snapshot{
		Schema:     rep.sch,
		AccParams:  rep.params,
		Root:       sr.state.Root,
		Height:     uint32(sr.state.Height),
		RootSig:    sr.state.RootSig,
		PageSize:   uint32(sr.snap.PageSize()),
		HeapPages:  sr.state.HeapPages,
		KeyVersion: sr.state.KeyVersion,
		Version:    sr.state.Version,
		Epoch:      sr.state.Epoch,
	}
	for id := 1; id < sr.snap.NumPages(); id++ {
		buf, err := sr.snap.View(storage.PageID(id))
		if err != nil {
			return 0, nil, err
		}
		cp := make([]byte, len(buf))
		copy(cp, buf)
		snap.PageIDs = append(snap.PageIDs, storage.PageID(id))
		snap.PageData = append(snap.PageData, cp)
	}
	ref := table
	if !legacy {
		ref = wire.ShardRef(table, uint32(idx))
	}
	out := s.tamperedPeerBody(wire.MsgSnapshotResp, ref, snap.Encode())
	s.stats.peerPayloadsServed.Add(1)
	s.stats.peerBytesServed.Add(uint64(len(out)))
	return wire.MsgSnapshotResp, out, nil
}

// servePeerDelta relays a cached central-signed delta body for the
// requester's exact (epoch, fromVersion). The staleness guard comes
// first: a requester at or past this replica's own published state gets
// a typed Behind — never a fabricated empty delta — so it fails over
// instead of spinning; a requester inside our history that the relay
// cache cannot cover gets a typed DeltaGap steering it to a snapshot.
func (s *Server) servePeerDelta(table, ref string, idx int, from, epoch uint64, legacy bool) (wire.MsgType, []byte, error) {
	rep := s.replica(table)
	if rep == nil {
		return 0, nil, wire.UnknownTable("edge", table)
	}
	set := rep.set.Load()
	if set == nil {
		return 0, nil, errors.New("edge: replica has no published set")
	}
	if legacy && set.smap != nil {
		return 0, nil, wire.NotSharded("edge", table, "table is range-partitioned; use shard deltas")
	}
	if idx < 0 || idx >= len(set.shards) {
		return 0, nil, fmt.Errorf("edge: shard %d out of range (replica has %d)", idx, len(set.shards))
	}
	head := set.shards[idx].state
	if epoch != head.Epoch {
		return 0, nil, wire.Behind(table, fmt.Sprintf("edge: requester descends from epoch %d, peer replica from epoch %d", epoch, head.Epoch))
	}
	if from >= head.Version {
		return 0, nil, wire.Behind(table, fmt.Sprintf("edge: requester at v%d, peer replica head at v%d", from, head.Version))
	}
	body, _, ok := s.relay.Get(ref, epoch, from)
	if !ok {
		return 0, nil, wire.DeltaGap(table, fmt.Sprintf("edge: no relayable delta from v%d for %q; take a snapshot or fall back to the central", from, ref))
	}
	body = s.tamperedPeerBody(wire.MsgDeltaResp, ref, body)
	s.stats.peerPayloadsServed.Add(1)
	s.stats.peerBytesServed.Add(uint64(len(body)))
	return wire.MsgDeltaResp, body, nil
}

// ---------------------------------------------------------------------
// Pulling side.

// pullPeerSnapshot fetches one shard snapshot from a peer and verifies
// it strictly against the central-verified map: same epoch, the exact
// pinned version, and a root signature recovering to the pinned digest.
// A replayed stale snapshot or a wrong-shard payload fails here and the
// caller fails over — only the central itself may serve state the map
// cannot vouch for yet (commits racing a pull; bound later by
// verifyAlignedStores). Returns the wire size, the installed store and
// the verified snapshot.
func (s *Server) pullPeerSnapshot(ctx context.Context, src *peer.Source, tableName string, idx int, sm *shardmap.Signed) (int, *storage.PageStore, *wire.Snapshot, error) {
	req := &wire.ShardSnapshotRequest{Table: tableName, Shard: uint32(idx)}
	body, err := src.Conn().Call(ctx, wire.MsgShardSnapshotReq, req.Encode(), wire.MsgSnapshotResp, true)
	if err != nil {
		return 0, nil, nil, err
	}
	snap, err := wire.DecodeSnapshot(body)
	if err != nil {
		return 0, nil, nil, err
	}
	if snap.Epoch != sm.Map.Epoch || snap.Version != sm.Map.Shards[idx].Version {
		return 0, nil, nil, wire.Behind(tableName, fmt.Sprintf(
			"edge: peer snapshot at epoch %d v%d, verified map pins epoch %d v%d",
			snap.Epoch, snap.Version, sm.Map.Epoch, sm.Map.Shards[idx].Version))
	}
	if err := s.verifySnapshot(ctx, snap, sm.Map.Shards[idx].RootDigest); err != nil {
		return 0, nil, nil, err
	}
	store, err := installStore(snap)
	if err != nil {
		return 0, nil, nil, err
	}
	s.stats.snapshotsInstalled.Add(1)
	s.countPeerPull(src, len(body))
	return len(body), store, snap, nil
}

// refreshShardFromPeers drains verified forward progress for one shard
// from the upstream peers: relayed deltas hop by hop, or a pinned
// snapshot when a current peer's relay cache cannot cover the gap
// (catch-up). Per-source failures back the source off and move to the
// next; only ctx expiry (or a local store fault) aborts. Returns the
// bytes pulled, "" / "delta" / "snapshot", and the (possibly replaced)
// store — the caller finishes from the central if the map's pin is
// still ahead of the store.
func (s *Server) refreshShardFromPeers(ctx context.Context, tableName string, store *storage.PageStore, idx int, st *vbtree.TableState, sm *shardmap.Signed) (int, string, *storage.PageStore, error) {
	ref := wire.ShardRef(tableName, uint32(idx))
	target := sm.Map.Shards[idx].Version
	var total int
	var mode string
	for _, src := range s.peers.Available() {
		for hops := 0; st.Version < target && hops < maxPeerHops; hops++ {
			if err := ctx.Err(); err != nil {
				return total, mode, store, err
			}
			req := &wire.ShardDeltaRequest{Table: tableName, Shard: uint32(idx), FromVersion: st.Version, Epoch: st.Epoch}
			body, err := src.Conn().Call(ctx, wire.MsgShardDeltaReq, req.Encode(), wire.MsgDeltaResp, true)
			if errors.Is(err, wire.ErrDeltaGap) {
				// The peer is current but cannot bridge our gap with a
				// relayed delta: bootstrap-style catch-up from its pinned
				// snapshot instead.
				n, fresh, _, serr := s.pullPeerSnapshot(ctx, src, tableName, idx, sm)
				total += n
				if serr != nil {
					if cerr := ctx.Err(); cerr != nil {
						return total, mode, store, cerr
					}
					s.peerFail(src)
					break
				}
				return total, "snapshot", fresh, nil
			}
			if err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return total, mode, store, cerr
				}
				s.peerFail(src)
				break
			}
			d, err := wire.DecodeDelta(body)
			if err != nil {
				s.peerFail(src)
				break
			}
			if err := s.verifyDelta(ctx, d, body); err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return total, mode, store, cerr
				}
				s.peerFail(src)
				break
			}
			// A relayed delta must anchor at our exact head and move it
			// strictly forward. SnapshotNeeded markers and noops are
			// central-only answers — from a peer they could replay
			// forever, so they count as a failed source instead.
			if d.Table != ref || d.SnapshotNeeded || d.Epoch != st.Epoch ||
				d.FromVersion != st.Version || d.ToVersion <= st.Version {
				s.peerFail(src)
				break
			}
			if err := applyDelta(store, d, ref); err != nil {
				s.peerFail(src)
				break
			}
			s.relay.Put(ref, d.Epoch, d.FromVersion, d.ToVersion, body)
			s.stats.deltasApplied.Add(1)
			s.countPeerPull(src, len(body))
			total += len(body)
			mode = "delta"
			if st, err = storeState(store); err != nil {
				return total, mode, store, err
			}
		}
		if st.Version >= target {
			break
		}
	}
	return total, mode, store, nil
}

// drainLegacyPeerDeltas is the single-tree analogue of
// refreshShardFromPeers: it applies relayed deltas from upstream peers
// hop by hop. There is no central-verified map to name the target on
// this path, so the caller MUST still finish the round with a central
// delta exchange — the central's (possibly noop) signed answer is the
// freshness statement a peer cannot fabricate, and it covers whatever
// the peers did not. Returns the bytes pulled, whether any delta was
// applied, and the store's new head.
func (s *Server) drainLegacyPeerDeltas(ctx context.Context, tableName string, store *storage.PageStore, st *vbtree.TableState) (int, bool, *vbtree.TableState, error) {
	var total int
	var applied bool
	for _, src := range s.peers.Available() {
		for hops := 0; hops < maxPeerHops; hops++ {
			if err := ctx.Err(); err != nil {
				return total, applied, st, err
			}
			req := &wire.DeltaRequest{Table: tableName, FromVersion: st.Version, Epoch: st.Epoch}
			body, err := src.Conn().Call(ctx, wire.MsgDeltaReq, req.Encode(), wire.MsgDeltaResp, true)
			if errors.Is(err, wire.ErrBehind) || errors.Is(err, wire.ErrDeltaGap) {
				// The peer has nothing relayable past our version. On this
				// path no verified map names the true head, so "behind"
				// is ambiguous (the peer may simply be as current as we
				// are) and is not scored as a failure; the central
				// exchange that follows settles freshness either way.
				break
			}
			if err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return total, applied, st, cerr
				}
				s.peerFail(src)
				break
			}
			d, err := wire.DecodeDelta(body)
			if err != nil {
				s.peerFail(src)
				break
			}
			if err := s.verifyDelta(ctx, d, body); err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return total, applied, st, cerr
				}
				s.peerFail(src)
				break
			}
			if d.Table != tableName || d.SnapshotNeeded || d.Epoch != st.Epoch ||
				d.FromVersion != st.Version || d.ToVersion <= st.Version {
				s.peerFail(src)
				break
			}
			if err := applyDelta(store, d, tableName); err != nil {
				s.peerFail(src)
				break
			}
			s.relay.Put(tableName, d.Epoch, d.FromVersion, d.ToVersion, body)
			s.stats.deltasApplied.Add(1)
			s.countPeerPull(src, len(body))
			total += len(body)
			applied = true
			if st, err = storeState(store); err != nil {
				return total, applied, st, err
			}
		}
	}
	return total, applied, st, nil
}
