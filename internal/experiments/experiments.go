// Package experiments measures the live implementation and renders the
// results in the same figure format as the analytic cost model, so the
// benchmark harness can print paper-model and measured series side by
// side for every table and figure of the evaluation (paper §4).
//
// Scale note: the paper's plots are analytic, evaluated at N_R = 1M
// tuples. The measured series run the real system — VB-tree, Naive store,
// wire encodings, signature recovery — at a laptop-scale table size
// (Config.Rows, default 10k), which preserves every comparative shape the
// paper reports: who wins, how the gap moves with selectivity, Q_C,
// attribute size and X.
package experiments

import (
	"context"
	"fmt"
	"time"

	"edgeauth/internal/digest"
	"edgeauth/internal/naive"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/storage"
	"edgeauth/internal/vbtree"
	"edgeauth/internal/verify"
	"edgeauth/internal/workload"
)

// Config sizes the measured runs.
type Config struct {
	// Rows is the main measured table size.
	Rows int
	// SmallRows sizes the per-point rebuilds (Figure 11's attribute-size
	// sweep and the update experiments).
	SmallRows int
	// KeyBits sizes the signing key.
	KeyBits int
	// PageSize is the node size (Table 1: 4 KB).
	PageSize int
	// Seed drives the workload generator.
	Seed int64
}

// DefaultConfig returns laptop-scale defaults.
func DefaultConfig() Config {
	return Config{
		Rows:      10_000,
		SmallRows: 2_000,
		KeyBits:   512,
		PageSize:  storage.DefaultPageSize,
		Seed:      42,
	}
}

// Env is a built deployment reused across measurements: the same table
// indexed by a VB-tree and mirrored in a Naive store.
type Env struct {
	Cfg    Config
	Key    *sig.PrivateKey
	Sch    *schema.Schema
	Tree   *vbtree.Tree
	Naive  *naive.Store
	AccLen int

	// Counters instrument the verification side.
	counters *digest.Counters
	verAcc   *digest.Accumulator
	verPub   *sig.PublicKey
}

// NewEnv builds the measured environment. Signing every attribute, tuple
// and node digest takes a few seconds at default scale.
func NewEnv(cfg Config) (*Env, error) {
	key, err := sig.GenerateKey(cfg.KeyBits)
	if err != nil {
		return nil, err
	}
	return NewEnvWithKey(cfg, key)
}

// NewEnvWithKey builds the environment around an existing key.
func NewEnvWithKey(cfg Config, key *sig.PrivateKey) (*Env, error) {
	spec := workload.DefaultSpec(cfg.Rows)
	spec.Seed = cfg.Seed
	sch, err := spec.Schema()
	if err != nil {
		return nil, err
	}
	tuples, err := spec.Tuples()
	if err != nil {
		return nil, err
	}
	acc := digest.MustNew(digest.DefaultParams())
	tree, err := buildTree(cfg, sch, acc, key, tuples)
	if err != nil {
		return nil, err
	}
	nstore, err := naive.BuildStore(sch, acc, key, tuples)
	if err != nil {
		return nil, err
	}
	// Instrumented accumulator + key for the client side.
	counters := &digest.Counters{}
	p := digest.DefaultParams()
	p.Counters = counters
	verAcc := digest.MustNew(p)
	verPub := key.Public()
	verPub.Counters = counters
	return &Env{
		Cfg:      cfg,
		Key:      key,
		Sch:      sch,
		Tree:     tree,
		Naive:    nstore,
		AccLen:   acc.Len(),
		counters: counters,
		verAcc:   verAcc,
		verPub:   verPub,
	}, nil
}

func buildTree(cfg Config, sch *schema.Schema, acc *digest.Accumulator, key *sig.PrivateKey, tuples []schema.Tuple) (*vbtree.Tree, error) {
	mem, err := storage.NewMemPager(cfg.PageSize)
	if err != nil {
		return nil, err
	}
	pool, err := storage.NewBufferPool(mem, 1<<20)
	if err != nil {
		return nil, err
	}
	heap, err := storage.NewHeapFile(pool)
	if err != nil {
		return nil, err
	}
	return vbtree.Build(vbtree.Config{
		Pool:             pool,
		Heap:             heap,
		Schema:           sch,
		Acc:              acc,
		Signer:           key,
		Pub:              key.Public(),
		BuildParallelism: 8,
	}, tuples, 1.0)
}

// rangeFor converts a selectivity into datum bounds over the env table.
func (e *Env) rangeFor(sel float64) (lo, hi schema.Datum, qr int) {
	l, h, q := workload.RangeForSelectivity(e.Cfg.Rows, sel, e.Cfg.Seed+int64(sel*1000))
	return schema.Int64(l), schema.Int64(h), q
}

// CommPoint measures the response bytes of both schemes for one
// selectivity and projection width.
type CommPoint struct {
	Selectivity  float64
	QR           int
	NaiveBytes   int
	VBBytes      int
	NaiveDigests int
	VBDigests    int
}

// MeasureComm runs the communication experiment for one (selectivity, Qc).
func (e *Env) MeasureComm(ctx context.Context, sel float64, qc int) (CommPoint, error) {
	lo, hi, qr := e.rangeFor(sel)
	project := workload.ProjectFirstN(e.Sch, qc)
	rs, w, err := e.Tree.RunQuery(ctx, vbtree.Query{Lo: &lo, Hi: &hi, Project: project})
	if err != nil {
		return CommPoint{}, err
	}
	nrs, nw, err := e.Naive.RunQuery(naive.Query{Lo: &lo, Hi: &hi, Project: project}, 0)
	if err != nil {
		return CommPoint{}, err
	}
	if len(rs.Tuples) != qr || len(nrs.Tuples) != qr {
		return CommPoint{}, fmt.Errorf("experiments: result sizes %d/%d, want %d",
			len(rs.Tuples), len(nrs.Tuples), qr)
	}
	return CommPoint{
		Selectivity:  sel,
		QR:           qr,
		NaiveBytes:   nrs.WireSize() + nw.WireSize(),
		VBBytes:      rs.WireSize() + w.WireSize(),
		NaiveDigests: nw.NumDigests(),
		VBDigests:    w.NumDigests(),
	}, nil
}

// OpsPoint captures the client-side operation counts of one verification.
type OpsPoint struct {
	Selectivity float64
	QR          int
	// VB scheme ops.
	VBHash, VBCombine, VBRecover int64
	// Naive scheme ops.
	NaiveHash, NaiveCombine, NaiveRecover int64
	// Wall-clock verification times.
	VBTime, NaiveTime time.Duration
}

// Cost weights ops into Cost_h units: hash + costK·combine + x·recover.
func (o OpsPoint) Cost(scheme string, costK, x float64) float64 {
	switch scheme {
	case "vb":
		return float64(o.VBHash) + costK*float64(o.VBCombine) + x*float64(o.VBRecover)
	case "naive":
		return float64(o.NaiveHash) + costK*float64(o.NaiveCombine) + x*float64(o.NaiveRecover)
	default:
		panic("experiments: unknown scheme " + scheme)
	}
}

// MeasureOps runs both schemes' full query+verify paths and counts the
// client's hash/combine/recover operations.
func (e *Env) MeasureOps(ctx context.Context, sel float64, qc int) (OpsPoint, error) {
	lo, hi, qr := e.rangeFor(sel)
	project := workload.ProjectFirstN(e.Sch, qc)
	out := OpsPoint{Selectivity: sel, QR: qr}

	// VB scheme.
	rs, w, err := e.Tree.RunQuery(ctx, vbtree.Query{Lo: &lo, Hi: &hi, Project: project})
	if err != nil {
		return out, err
	}
	ver := &verify.Verifier{Key: e.verPub, Acc: e.verAcc, Schema: e.Sch}
	before := e.counters.Snapshot()
	start := time.Now()
	if err := ver.Verify(rs, w); err != nil {
		return out, fmt.Errorf("experiments: VB verification failed: %w", err)
	}
	out.VBTime = time.Since(start)
	d := e.counters.Snapshot().Sub(before)
	out.VBHash, out.VBCombine, out.VBRecover = d.HashOps, d.CombineOps, d.RecoverOps

	// Naive scheme.
	nrs, nw, err := e.Naive.RunQuery(naive.Query{Lo: &lo, Hi: &hi, Project: project}, 0)
	if err != nil {
		return out, err
	}
	before = e.counters.Snapshot()
	start = time.Now()
	if err := naive.Verify(e.Sch, e.verAcc, e.verPub, nrs, nw); err != nil {
		return out, fmt.Errorf("experiments: naive verification failed: %w", err)
	}
	out.NaiveTime = time.Since(start)
	d = e.counters.Snapshot().Sub(before)
	out.NaiveHash, out.NaiveCombine, out.NaiveRecover = d.HashOps, d.CombineOps, d.RecoverOps
	return out, nil
}
