package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"edgeauth/internal/btree"
	"edgeauth/internal/costmodel"
	"edgeauth/internal/digest"
	"edgeauth/internal/naive"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/storage"
	"edgeauth/internal/vbtree"
	"edgeauth/internal/workload"
)

// MeasuredFig8 reports the implementation's real index fan-outs versus key
// length: the B-tree and VB-tree node layouts with the deployment's actual
// signature length (real RSA signatures are wider than the paper's 16-byte
// |D|, which widens the fan-out gap — same shape, larger constant).
func (e *Env) MeasuredFig8() costmodel.Figure {
	f := costmodel.Figure{
		ID:     "F8-measured",
		Title:  "Measured Index Fan-Out versus Key Length (real node layouts)",
		XLabel: "log2|K|",
		YLabel: "fan-out",
		Series: []costmodel.Series{{Name: "B-tree"}, {Name: "VB-tree"}},
	}
	sigLen := e.Key.Len()
	for i := 0; i <= 8; i++ {
		kl := 1 << i
		f.X = append(f.X, float64(i))
		f.Series[0].Y = append(f.Series[0].Y, float64(btree.MaxInternalFanOut(e.Cfg.PageSize, kl)))
		f.Series[1].Y = append(f.Series[1].Y, float64(vbtree.MaxInternalFanOut(e.Cfg.PageSize, kl, sigLen)))
	}
	return f
}

// MeasuredFig9 reports tree heights versus key length at the paper's 1M
// rows, derived from the implementation's real fan-outs, plus the actually
// built tree height at the measured scale as a calibration row appended to
// the title.
func (e *Env) MeasuredFig9() costmodel.Figure {
	f := costmodel.Figure{
		ID:     "F9-measured",
		Title:  "Measured Index Height versus Key Length (real layouts, N=1M)",
		XLabel: "log2|K|",
		YLabel: "height (levels)",
		Series: []costmodel.Series{{Name: "B-tree"}, {Name: "VB-tree"}},
	}
	sigLen := e.Key.Len()
	const nr = 1_000_000
	heightFor := func(fanOut int) float64 {
		if fanOut < 2 {
			fanOut = 2
		}
		return math.Ceil(math.Log(float64(nr)) / math.Log(float64(fanOut)))
	}
	for i := 0; i <= 8; i++ {
		kl := 1 << i
		f.X = append(f.X, float64(i))
		f.Series[0].Y = append(f.Series[0].Y, heightFor(btree.MaxInternalFanOut(e.Cfg.PageSize, kl)))
		f.Series[1].Y = append(f.Series[1].Y, heightFor(vbtree.MaxInternalFanOut(e.Cfg.PageSize, kl, sigLen)))
	}
	return f
}

// BuiltShape returns the measured shape of the env's real tree (height,
// fan-out, node counts) — the calibration evidence behind Figures 8–9.
func (e *Env) BuiltShape() (vbtree.Stats, error) {
	return e.Tree.Stats(8)
}

// MeasuredFig10 runs the communication experiment for one Qc across the
// selectivity sweep.
func (e *Env) MeasuredFig10(ctx context.Context, qc int) (costmodel.Figure, error) {
	f := costmodel.Figure{
		ID:     formatID("F10-measured(Qc=%d)", qc),
		Title:  formatID("Measured Communication Cost, Qc = %d", qc),
		XLabel: "selectivity%",
		YLabel: "bytes on the wire",
		Series: []costmodel.Series{{Name: "Naive"}, {Name: "VB-tree"}},
	}
	for _, sel := range workload.Selectivities() {
		p, err := e.MeasureComm(ctx, sel, qc)
		if err != nil {
			return f, err
		}
		f.X = append(f.X, sel)
		f.Series[0].Y = append(f.Series[0].Y, float64(p.NaiveBytes))
		f.Series[1].Y = append(f.Series[1].Y, float64(p.VBBytes))
	}
	return f, nil
}

// MeasuredFig11 rebuilds small environments with attribute size 16·2^f
// and measures communication at 20% and 80% selectivity.
func MeasuredFig11(ctx context.Context, cfg Config) (costmodel.Figure, error) {
	f := costmodel.Figure{
		ID:     "F11-measured",
		Title:  "Measured Communication versus Attribute Size (|A| = 16·2^f)",
		XLabel: "attrFactor",
		YLabel: "bytes on the wire",
		Series: []costmodel.Series{
			{Name: "Naive(20%)"}, {Name: "Naive(80%)"},
			{Name: "VB-tree(20%)"}, {Name: "VB-tree(80%)"},
		},
	}
	key, err := sig.GenerateKey(cfg.KeyBits)
	if err != nil {
		return f, err
	}
	for fac := 0; fac <= 6; fac++ {
		small := cfg
		small.Rows = cfg.SmallRows
		// The largest factor produces ~9 KB tuples; they spill into heap
		// overflow pages while the index keeps Table 1's 4 KB nodes.
		env, err := buildSizedEnv(small, key, 16*(1<<fac))
		if err != nil {
			return f, err
		}
		f.X = append(f.X, float64(fac))
		for si, sel := range []float64{20, 80} {
			p, err := env.MeasureComm(ctx, sel, len(env.Sch.Columns))
			if err != nil {
				return f, err
			}
			f.Series[si].Y = append(f.Series[si].Y, float64(p.NaiveBytes))
			f.Series[2+si].Y = append(f.Series[2+si].Y, float64(p.VBBytes))
		}
	}
	return f, nil
}

// buildSizedEnv builds an Env whose non-key attributes are attrSize bytes.
func buildSizedEnv(cfg Config, key *sig.PrivateKey, attrSize int) (*Env, error) {
	spec := workload.DefaultSpec(cfg.Rows)
	spec.Seed = cfg.Seed
	spec.AttrSize = attrSize
	sch, err := spec.Schema()
	if err != nil {
		return nil, err
	}
	tuples, err := spec.Tuples()
	if err != nil {
		return nil, err
	}
	acc := digest.MustNew(digest.DefaultParams())
	tree, err := buildTree(cfg, sch, acc, key, tuples)
	if err != nil {
		return nil, err
	}
	nstore, err := naive.BuildStore(sch, acc, key, tuples)
	if err != nil {
		return nil, err
	}
	counters := &digest.Counters{}
	p := digest.DefaultParams()
	p.Counters = counters
	verAcc := digest.MustNew(p)
	verPub := key.Public()
	verPub.Counters = counters
	return &Env{
		Cfg:      cfg,
		Key:      key,
		Sch:      sch,
		Tree:     tree,
		Naive:    nstore,
		AccLen:   acc.Len(),
		counters: counters,
		verAcc:   verAcc,
		verPub:   verPub,
	}, nil
}

// MeasuredFig12 sweeps selectivity and reports measured client cost in
// Cost_h units for a given X (recover ops weighted X, combine ops 1).
func (e *Env) MeasuredFig12(ctx context.Context, x float64) (costmodel.Figure, error) {
	f := costmodel.Figure{
		ID:     formatID("F12-measured(X=%g)", x),
		Title:  formatID("Measured Client Computation, X = %g", x),
		XLabel: "selectivity%",
		YLabel: "Cost_h units (measured op counts)",
		Series: []costmodel.Series{{Name: "Naive"}, {Name: "VB-tree"}},
	}
	for _, sel := range workload.Selectivities() {
		p, err := e.MeasureOps(ctx, sel, len(e.Sch.Columns))
		if err != nil {
			return f, err
		}
		f.X = append(f.X, sel)
		f.Series[0].Y = append(f.Series[0].Y, p.Cost("naive", 1, x))
		f.Series[1].Y = append(f.Series[1].Y, p.Cost("vb", 1, x))
	}
	return f, nil
}

// MeasuredFig13a reweights measured op counts across Cost_k/Cost_h ratios.
func (e *Env) MeasuredFig13a(ctx context.Context) (costmodel.Figure, error) {
	f := costmodel.Figure{
		ID:     "F13a-measured",
		Title:  "Measured Computation versus Cost_k/Cost_h (X = 10)",
		XLabel: "Cost_k/Cost_h",
		YLabel: "Cost_h units (measured op counts)",
		Series: []costmodel.Series{
			{Name: "Naive(20%)"}, {Name: "Naive(80%)"},
			{Name: "VB-tree(20%)"}, {Name: "VB-tree(80%)"},
		},
	}
	var pts [2]OpsPoint
	for i, sel := range []float64{20, 80} {
		p, err := e.MeasureOps(ctx, sel, len(e.Sch.Columns))
		if err != nil {
			return f, err
		}
		pts[i] = p
	}
	for r := 0.0; r <= 3.0001; r += 0.5 {
		f.X = append(f.X, r)
		for i := range pts {
			f.Series[i].Y = append(f.Series[i].Y, pts[i].Cost("naive", r, 10))
			f.Series[2+i].Y = append(f.Series[2+i].Y, pts[i].Cost("vb", r, 10))
		}
	}
	return f, nil
}

// MeasuredFig13b sweeps the projection width Qc at 20% and 80%
// selectivity.
func (e *Env) MeasuredFig13b(ctx context.Context) (costmodel.Figure, error) {
	f := costmodel.Figure{
		ID:     "F13b-measured",
		Title:  "Measured Computation versus Qc (X = 10)",
		XLabel: "Qc",
		YLabel: "Cost_h units (measured op counts)",
		Series: []costmodel.Series{
			{Name: "Naive(20%)"}, {Name: "Naive(80%)"},
			{Name: "VB-tree(20%)"}, {Name: "VB-tree(80%)"},
		},
	}
	for qc := 1; qc <= len(e.Sch.Columns); qc++ {
		f.X = append(f.X, float64(qc))
		for i, sel := range []float64{20, 80} {
			p, err := e.MeasureOps(ctx, sel, qc)
			if err != nil {
				return f, err
			}
			f.Series[i].Y = append(f.Series[i].Y, p.Cost("naive", 1, 10))
			f.Series[2+i].Y = append(f.Series[2+i].Y, p.Cost("vb", 1, 10))
		}
	}
	return f, nil
}

// UpdatePoint measures one central-server update.
type UpdatePoint struct {
	Label    string
	HashOps  int64
	Combines int64
	Recovers int64
	Wall     time.Duration
}

// MeasureUpdates builds a fresh tree at SmallRows scale and measures
// insert and range-delete costs, plus the full-recompute (Audit) baseline
// the incremental scheme avoids.
func MeasureUpdates(cfg Config) ([]UpdatePoint, error) {
	key, err := sig.GenerateKey(cfg.KeyBits)
	if err != nil {
		return nil, err
	}
	counters := &digest.Counters{}
	p := digest.DefaultParams()
	p.Counters = counters
	acc := digest.MustNew(p)

	spec := workload.DefaultSpec(cfg.SmallRows)
	spec.Seed = cfg.Seed
	sch, err := spec.Schema()
	if err != nil {
		return nil, err
	}
	tuples, err := spec.Tuples()
	if err != nil {
		return nil, err
	}
	mem, err := storage.NewMemPager(cfg.PageSize)
	if err != nil {
		return nil, err
	}
	pool, err := storage.NewBufferPool(mem, 1<<20)
	if err != nil {
		return nil, err
	}
	heap, err := storage.NewHeapFile(pool)
	if err != nil {
		return nil, err
	}
	pub := key.Public()
	pub.Counters = counters
	tree, err := vbtree.Build(vbtree.Config{
		Pool: pool, Heap: heap, Schema: sch, Acc: acc,
		Signer: key, Pub: pub, BuildParallelism: 8,
	}, tuples, 1.0)
	if err != nil {
		return nil, err
	}

	var out []UpdatePoint
	measure := func(label string, fn func() error) error {
		before := counters.Snapshot()
		start := time.Now()
		if err := fn(); err != nil {
			return err
		}
		wall := time.Since(start)
		d := counters.Snapshot().Sub(before)
		out = append(out, UpdatePoint{
			Label:    label,
			HashOps:  d.HashOps,
			Combines: d.CombineOps,
			Recovers: d.RecoverOps,
			Wall:     wall,
		})
		return nil
	}

	nextID := int64(cfg.SmallRows * 10)
	mk := func() schema.Tuple {
		nextID++
		vals := make([]schema.Datum, len(sch.Columns))
		vals[0] = schema.Int64(nextID)
		for i := 1; i < len(sch.Columns); i++ {
			vals[i] = schema.Str("xxxxxxxxxxxxxxxxxxxx")
		}
		return schema.Tuple{Values: vals}
	}
	if err := measure("insert (incremental, formula 11)", func() error {
		return tree.Insert(mk())
	}); err != nil {
		return nil, err
	}
	// Disjoint delete ranges sized to the table: qr ∈ {1,10,100,…} while
	// they fit in the first half of the key space.
	off := 0
	for qr := 1; qr <= cfg.SmallRows/2-off; qr *= 10 {
		lo := schema.Int64(int64(off))
		hi := schema.Int64(int64(off + qr - 1))
		off += qr
		label := formatID("delete %d tuples (formula 12)", qr)
		if err := measure(label, func() error {
			n, err := tree.DeleteRange(&lo, &hi)
			if err != nil {
				return err
			}
			if n != qr {
				return fmt.Errorf("experiments: deleted %d, want %d", n, qr)
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	if err := measure("full recompute baseline (Audit)", func() error {
		_, err := tree.Audit()
		return err
	}); err != nil {
		return nil, err
	}
	return out, nil
}

func formatID(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}
