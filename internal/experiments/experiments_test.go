package experiments

import (
	"context"
	"sync"
	"testing"

	"edgeauth/internal/sig"
)

// Small scales keep the test suite fast; shapes are scale-independent.
func testConfig() Config {
	return Config{
		Rows:      800,
		SmallRows: 300,
		KeyBits:   512,
		PageSize:  1024,
		Seed:      7,
	}
}

var (
	envOnce sync.Once
	envInst *Env
	envErr  error
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		key, err := sig.GenerateKey(512)
		if err != nil {
			envErr = err
			return
		}
		envInst, envErr = NewEnvWithKey(testConfig(), key)
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envInst
}

func TestEnvBuilds(t *testing.T) {
	e := testEnv(t)
	if e.Tree == nil || e.Naive == nil {
		t.Fatal("env incomplete")
	}
	st, err := e.BuiltShape()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != testConfig().Rows {
		t.Fatalf("tree holds %d entries, want %d", st.Entries, testConfig().Rows)
	}
	if e.Naive.Len() != testConfig().Rows {
		t.Fatalf("naive store holds %d", e.Naive.Len())
	}
}

func TestMeasureCommOrdering(t *testing.T) {
	e := testEnv(t)
	prevGap := -1 << 60
	for _, sel := range []float64{10, 50, 100} {
		p, err := e.MeasureComm(context.Background(), sel, 5)
		if err != nil {
			t.Fatal(err)
		}
		if p.VBBytes >= p.NaiveBytes {
			t.Errorf("sel=%v: VB bytes %d >= Naive %d", sel, p.VBBytes, p.NaiveBytes)
		}
		gap := p.NaiveBytes - p.VBBytes
		if gap < prevGap {
			t.Errorf("sel=%v: byte gap shrank", sel)
		}
		prevGap = gap
		if p.VBDigests >= p.NaiveDigests+int(float64(p.QR)*0.5) {
			t.Errorf("sel=%v: VB digests %d not clearly below Naive %d+QR", sel, p.VBDigests, p.NaiveDigests)
		}
	}
}

func TestMeasureOpsOrdering(t *testing.T) {
	e := testEnv(t)
	p, err := e.MeasureOps(context.Background(), 50, len(e.Sch.Columns))
	if err != nil {
		t.Fatal(err)
	}
	// The defining difference: Naive recovers one signature per result
	// tuple; the VB-tree recovers only the VO digests.
	if p.NaiveRecover < int64(p.QR) {
		t.Fatalf("naive recoveries %d below result size %d", p.NaiveRecover, p.QR)
	}
	if p.VBRecover >= p.NaiveRecover {
		t.Fatalf("VB recoveries %d >= naive %d", p.VBRecover, p.NaiveRecover)
	}
	// Both hash every returned attribute.
	wantHashes := int64(p.QR * len(e.Sch.Columns))
	if p.VBHash != wantHashes || p.NaiveHash != wantHashes {
		t.Fatalf("hash ops vb=%d naive=%d, want %d", p.VBHash, p.NaiveHash, wantHashes)
	}
	// Weighted cost keeps the ordering for every X the paper sweeps.
	for _, x := range []float64{5, 10, 100} {
		if p.Cost("vb", 1, x) >= p.Cost("naive", 1, x) {
			t.Errorf("X=%v: VB cost not below naive", x)
		}
	}
}

func TestMeasuredFigureShapes(t *testing.T) {
	e := testEnv(t)
	f8 := e.MeasuredFig8()
	for i := range f8.X {
		if f8.Series[1].Y[i] >= f8.Series[0].Y[i] {
			t.Errorf("F8: VB fan-out >= B fan-out at x=%v", f8.X[i])
		}
	}
	f9 := e.MeasuredFig9()
	for i := range f9.X {
		if f9.Series[1].Y[i] < f9.Series[0].Y[i] {
			t.Errorf("F9: VB height below B height at x=%v", f9.X[i])
		}
	}
	f10, err := e.MeasuredFig10(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	last := len(f10.X) - 1
	if f10.Series[1].Y[last] >= f10.Series[0].Y[last] {
		t.Error("F10: VB not below Naive at 100% selectivity")
	}
	f12, err := e.MeasuredFig12(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if f12.Series[1].Y[last] >= f12.Series[0].Y[last] {
		t.Error("F12: VB not below Naive at 100% selectivity")
	}
	f13a, err := e.MeasuredFig13a(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(f13a.X) != 7 {
		t.Errorf("F13a has %d points", len(f13a.X))
	}
	f13b, err := e.MeasuredFig13b(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(f13b.X) != len(e.Sch.Columns) {
		t.Errorf("F13b has %d points", len(f13b.X))
	}
}

func TestMeasuredFig11Converges(t *testing.T) {
	cfg := testConfig()
	cfg.SmallRows = 150 // 7 rebuilds; keep them cheap
	f, err := MeasuredFig11(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.X) != 7 {
		t.Fatalf("F11 has %d points", len(f.X))
	}
	// Ratio Naive/VB at 80% selectivity must shrink as attributes grow.
	first := f.Series[1].Y[0] / f.Series[3].Y[0]
	lastIdx := len(f.X) - 1
	last := f.Series[1].Y[lastIdx] / f.Series[3].Y[lastIdx]
	if last >= first {
		t.Fatalf("F11 ratio did not converge: %v -> %v", first, last)
	}
	// VB stays below Naive throughout.
	for i := range f.X {
		if f.Series[3].Y[i] >= f.Series[1].Y[i] {
			t.Errorf("F11: VB >= Naive at factor %v", f.X[i])
		}
	}
}

func TestMeasureUpdates(t *testing.T) {
	cfg := testConfig()
	cfg.SmallRows = 400
	pts, err := MeasureUpdates(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 1 insert + deletes for qr = 1, 10, 100 (fitting 400 rows) + audit.
	if len(pts) != 5 {
		t.Fatalf("got %d update points: %+v", len(pts), pts)
	}
	insert := pts[0]
	audit := pts[len(pts)-1]
	// Formula (11): an insert hashes N_C attributes and performs a
	// handful of combines — orders of magnitude below a full recompute.
	if insert.HashOps > 50 {
		t.Errorf("insert hashed %d times", insert.HashOps)
	}
	if audit.HashOps < int64(cfg.SmallRows) {
		t.Errorf("audit hashed only %d times", audit.HashOps)
	}
	if insert.Combines*10 > audit.Combines {
		t.Errorf("incremental insert (%d combines) not clearly below recompute (%d)",
			insert.Combines, audit.Combines)
	}
	// Delete cost grows (weakly) with the deleted range.
	deletes := pts[1 : len(pts)-1]
	if deletes[len(deletes)-1].Combines < deletes[0].Combines {
		t.Errorf("delete combines shrank with range size: %+v", deletes)
	}
}
