// Package edgeauth is a Go implementation of "Authenticating Query
// Results in Edge Computing" (Pang & Tan, ICDE 2004): verifiable B-trees
// (VB-trees) whose signed digests let untrusted edge servers prove, with a
// verification object (VO) linear in the result size and independent of
// the database size, that query results are authentic — values untampered,
// no spurious tuples.
//
// This package is the public facade over the implementation:
//
//   - NewCentral creates the trusted central DBMS (owns the signing key,
//     builds VB-trees, applies inserts/deletes, serves snapshots).
//   - NewEdge creates an untrusted edge server that replicates tables from
//     the central server and answers queries with VOs.
//   - Dial creates a verifying client that rejects tampered results.
//
// The client API is context-first and concurrent: every network-facing
// method takes a context.Context (cancellation and deadlines are observed
// mid-request), and one Client may be shared by many goroutines — their
// requests pipeline over a single multiplexed connection per server (wire
// protocol v2) with responses demultiplexed by request ID. Peers speaking
// the original serial protocol interoperate transparently through the
// version-negotiating handshake. Remote failures carry typed codes:
// errors.Is distinguishes ErrTampered (verification failure at the
// client), ErrUnknownTable and ErrStaleReplica.
//
// See the examples directory for complete deployments, and cmd/bench for
// the reproduction of every figure in the paper's evaluation.
package edgeauth

import (
	"context"

	"edgeauth/internal/central"
	"edgeauth/internal/client"
	"edgeauth/internal/digest"
	"edgeauth/internal/edge"
	"edgeauth/internal/query"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/vbtree"
	"edgeauth/internal/verify"
	"edgeauth/internal/vo"
	"edgeauth/internal/wire"
)

// Core data-model types.
type (
	// Schema describes a table: identity, columns, primary key.
	Schema = schema.Schema
	// Column is one attribute of a table.
	Column = schema.Column
	// Datum is a typed value.
	Datum = schema.Datum
	// Tuple is one row.
	Tuple = schema.Tuple
	// Type enumerates column types.
	Type = schema.Type
)

// Column type constants.
const (
	TypeInt64   = schema.TypeInt64
	TypeFloat64 = schema.TypeFloat64
	TypeString  = schema.TypeString
	TypeBytes   = schema.TypeBytes
)

// Datum constructors.
var (
	Int64   = schema.Int64
	Float64 = schema.Float64
	Str     = schema.Str
	Bytes   = schema.Bytes
)

// Query types.
type (
	// Predicate is a comparison: column OP literal.
	Predicate = query.Predicate
	// Op is a comparison operator.
	Op = query.Op
	// TreeQuery is the compiled form executed by a VB-tree.
	TreeQuery = vbtree.Query
)

// Comparison operators.
const (
	OpEQ = query.OpEQ
	OpNE = query.OpNE
	OpLT = query.OpLT
	OpLE = query.OpLE
	OpGT = query.OpGT
	OpGE = query.OpGE
)

// Protocol types.
type (
	// ResultSet is a verifiable query answer.
	ResultSet = vo.ResultSet
	// VO is the verification object accompanying a result.
	VO = vo.VO
	// Verifier checks results against the central server's public key.
	Verifier = verify.Verifier
	// PublicKey verifies and recovers signed digests.
	PublicKey = sig.PublicKey
	// PrivateKey signs digests (held only by the central server).
	PrivateKey = sig.PrivateKey
)

// Server roles.
type (
	// Central is the trusted central DBMS.
	Central = central.Server
	// CentralOptions configures the central server.
	CentralOptions = central.Options
	// Edge is an untrusted edge server.
	Edge = edge.Server
	// EdgeOptions configures an edge server's serving side.
	EdgeOptions = edge.Options
	// RefreshStat reports how an edge refresh brought one replica up to
	// date (signed delta, full snapshot, or noop) and what it cost.
	RefreshStat = edge.RefreshStat
	// Client is a verifying database client. It is safe for concurrent
	// use; every method takes a context.
	Client = client.Client
	// Config configures Dial.
	Config = client.Config
	// VerifiedResult is a client query answer that passed verification.
	VerifiedResult = client.QueryResult
)

// ErrTampered is returned by Client.Query when a result fails
// verification — the signal that an edge server has been compromised.
var ErrTampered = client.ErrTampered

// Typed remote errors (wire protocol v2), matched with errors.Is.
var (
	// ErrUnknownTable reports a table that is not registered at the
	// central server or not replicated at the edge.
	ErrUnknownTable = wire.ErrUnknownTable
	// ErrStaleReplica reports a replica whose version history has
	// diverged from the request's assumption. Edge servers return it for
	// queries once a refresh has discovered the central's table epoch no
	// longer matches the replica's.
	ErrStaleReplica = wire.ErrStaleReplica
	// ErrDuplicateKey reports an insert that collided with an existing
	// primary key (per-op inside InsertBatch results, or for Insert).
	ErrDuplicateKey = wire.ErrDuplicateKey
)

// NewCentral creates the trusted central server with a fresh signing key.
func NewCentral(opts CentralOptions) (*Central, error) {
	return central.NewServer(opts)
}

// NewEdge creates an edge server that replicates from the central server
// at centralAddr.
func NewEdge(centralAddr string) *Edge {
	return edge.New(centralAddr)
}

// NewEdgeWithOptions creates an edge server with explicit serving options
// (idle timeout, per-connection concurrency bound).
func NewEdgeWithOptions(centralAddr string, opts EdgeOptions) *Edge {
	return edge.NewWithOptions(centralAddr, opts)
}

// Dial creates a client that queries cfg.EdgeAddr and routes updates and
// key fetches to cfg.CentralAddr. The edge connection is established (and
// its protocol version negotiated) before Dial returns.
func Dial(ctx context.Context, cfg Config) (*Client, error) {
	return client.Dial(ctx, cfg)
}

// NewClient creates a client that queries edgeAddr and routes updates and
// key fetches to centralAddr, connecting lazily.
//
// Deprecated: use Dial, which takes a context and reports an unreachable
// edge immediately.
func NewClient(edgeAddr, centralAddr string) *Client {
	return client.New(edgeAddr, centralAddr)
}

// GenerateKey creates an RSA signing key pair of the given size.
func GenerateKey(bits int) (*PrivateKey, error) {
	return sig.GenerateKey(bits)
}

// DefaultDigestParams returns the paper's digest configuration (16-byte
// digests, g(x) = x^15 mod 2^128).
func DefaultDigestParams() digest.Params {
	return digest.DefaultParams()
}
